(* phoenix — command-line front end.

   Subcommands:
     compile   compile a Hamiltonian file (or builtin workload) and report
               metrics; optionally dump the gate list
     info      describe a builtin workload
     bench     run one of the paper's experiment artifacts
     simulate  compile and state-vector-simulate a small workload
     analyze   run the static analyzer over a compiled workload
     certify   compile under the symbolic translation validator and
               report the per-boundary certificate
     passes    list the registered passes and which pipelines use them
     chaos     seeded fault-injection soak over the registered pipelines

   Every compiler — PHOENIX and the baselines — dispatches through the
   pipeline registry (Phoenix_pipeline.Registry), so they all return the
   same report, carry declared metrics for lint certification, and
   support --timings / --trace.

   Exit codes: 0 clean, 2 usage/input error, 3 verification errors
   (--verify), 4 error-severity lint findings or a non-proved
   certificate (--lint / --certify / analyze / certify), 5 deadline
   exceeded with no fallback rung (--timeout). *)

module Hamiltonian = Phoenix_ham.Hamiltonian
module Compiler = Phoenix.Compiler
module Circuit = Phoenix_circuit.Circuit
module Gate = Phoenix_circuit.Gate
module Topology = Phoenix_topology.Topology
module Diag = Phoenix_verify.Diag
module Structural = Phoenix_verify.Structural
module Finding = Phoenix_analysis.Finding
module Circuit_lint = Phoenix_analysis.Circuit_lint
module Registry = Phoenix_analysis.Registry
module Determinism = Phoenix_analysis.Determinism
module Pass = Phoenix.Pass
module Pipelines = Phoenix_pipeline.Registry
module Hooks = Phoenix_pipeline.Hooks
module Cache = Phoenix_cache.Cache
module Cache_audit = Phoenix_analysis.Cache_audit
module Budget = Phoenix_util.Budget
module Chaos = Phoenix_util.Chaos
module Resilience = Phoenix.Resilience
module Resilience_lint = Phoenix_analysis.Resilience_lint
module Template = Phoenix.Template
module Certify = Phoenix_tv.Certify

let read_hamiltonian path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  Hamiltonian.of_lines (go [])

(* Builtin workload specifiers now live in Phoenix_serve.Workload so the
   CLI and the serve daemon accept exactly the same grammar. *)
let load source =
  if Sys.file_exists source then read_hamiltonian source
  else begin
    match Phoenix_serve.Workload.of_spec source with
    | Ok h -> h
    | Error _ ->
      Printf.eprintf "no such file or builtin workload: %s\nbuiltins: %s\n"
        source Phoenix_serve.Workload.grammar;
      exit 2
  end

let topology_of_string n = function
  | "all-to-all" -> None
  | "heavy-hex" -> Some (Topology.ibm_manhattan ())
  | "line" -> Some (Topology.line (max n 2))
  | "ring" -> Some (Topology.ring (max n 3))
  | "grid" ->
    let side = int_of_float (ceil (sqrt (float_of_int n))) in
    Some (Topology.grid ~rows:side ~cols:side)
  | s ->
    Printf.eprintf
      "unknown topology %S (all-to-all, heavy-hex, line, ring, grid)\n" s;
    exit 2

(* --- shared compilation pipeline ----------------------------------------

   Every compiler goes through the pipeline registry: one dispatch, one
   report type, declared metrics for certification, pass times and a
   metric trace for all of them. *)

type compiled = {
  report : Compiler.report;
  topo : Topology.t option;
  lint_isa : Structural.isa;
  exact : bool;
  program : int * (Phoenix_pauli.Pauli_string.t * float) list;
      (** the gadget program the pipeline consumed (register size and
          tau-scaled angles), for end-to-end translation validation *)
  hook_findings : (string * Finding.t) list;
      (** per-pass lint-hook findings (with --lint) *)
  hook_diags : Diag.t list;
      (** pass-boundary translation-validation diagnostics (with
          --verify) *)
}

let find_pipeline name =
  match Pipelines.find name with
  | Some e -> e
  | None ->
    Printf.eprintf "unknown compiler %S\n" name;
    exit 2

(* The gadget program a registry compile consumes — mirrors the block /
   Trotter dispatch in [Pipelines.compile] so the translation-validation
   analysis checks the circuit against exactly what was compiled. *)
let program_of_entry (entry : Pipelines.entry) (options : Compiler.options) h =
  let tau = options.Compiler.tau in
  let gadgets =
    match (if entry.Pipelines.uses_blocks then Hamiltonian.term_blocks h else None)
    with
    | Some blocks ->
      List.concat_map
        (List.map (fun (t : Phoenix_pauli.Pauli_term.t) ->
             ( t.Phoenix_pauli.Pauli_term.pauli,
               2.0 *. t.Phoenix_pauli.Pauli_term.coeff *. tau )))
        blocks
    | None -> Hamiltonian.trotter_gadgets ~tau h
  in
  (Hamiltonian.num_qubits h, gadgets)

let compile_source ?(cache = Cache.Mem) ?(budget = Budget.none) ?cert_acc
    ~source ~isa ~topology ~compiler ~exact ~verify ~lint () =
  let h = load source in
  let n = Hamiltonian.num_qubits h in
  let topo = topology_of_string n topology in
  let entry = find_pipeline compiler in
  if entry.Pipelines.requires_topology && topo = None then begin
    Printf.eprintf "the %s compiler needs a --topology\n" entry.Pipelines.name;
    exit 2
  end;
  if
    entry.Pipelines.two_local_only
    && List.exists
         (fun (p, _) -> Phoenix_pauli.Pauli_string.weight p > 2)
         (Hamiltonian.trotter_gadgets h)
  then begin
    Printf.eprintf "the %s compiler only handles 2-local workloads\n"
      entry.Pipelines.name;
    exit 2
  end;
  let options =
    {
      Compiler.default_options with
      isa;
      exact;
      verify;
      cache;
      budget;
      target =
        (match topo with
        | None -> Compiler.Logical
        | Some t -> Compiler.Hardware t);
    }
  in
  let hook_findings = ref [] and hook_diags = ref [] in
  let hooks =
    (if lint then [ Hooks.lint hook_findings ] else [])
    @ (if verify then [ Hooks.translation_validate hook_diags ] else [])
    @ match cert_acc with Some acc -> [ Hooks.certify acc ] | None -> []
  in
  (* fail closed: any exception escaping a pass re-raises as Pass.Failed
     with the pass named, mapped to a structured exit at top level *)
  let report = Pipelines.compile ~options ~protect:true ~hooks entry h in
  {
    report;
    topo;
    lint_isa =
      (match isa with
      | Compiler.Cnot_isa -> Structural.Cnot_basis
      | Compiler.Su4_isa -> Structural.Su4_basis);
    exact;
    program = program_of_entry entry options h;
    hook_findings = List.rev !hook_findings;
    hook_diags = List.rev !hook_diags;
  }

(* --- fault injection (testing hook) -------------------------------------

   Corrupts the compiled circuit before verification and linting so the
   detection paths (and exit codes 3/4) are exercisable end to end from
   the shell.  Documented as a testing aid; `none` is the default. *)

type fault = No_fault | Out_of_isa | Nan_angle | Zero_angle | Dangling

let inject_fault fault c =
  match fault with
  | No_fault -> c
  | Out_of_isa ->
    Circuit.append c
      (Gate.Rpp
         {
           p0 = Phoenix_pauli.Pauli.X;
           p1 = Phoenix_pauli.Pauli.Z;
           a = 0;
           b = min 1 (Circuit.num_qubits c - 1);
           theta = 0.7;
         })
  | Nan_angle -> Circuit.append c (Gate.G1 (Gate.Rz Float.nan, 0))
  | Zero_angle -> Circuit.append c (Gate.G1 (Gate.Rz 0.0, 0))
  | Dangling -> Circuit.with_num_qubits (Circuit.num_qubits c + 1) c

let fault_enum =
  [
    "none", No_fault;
    "out-of-isa", Out_of_isa;
    "nan-angle", Nan_angle;
    "zero-angle", Zero_angle;
    "dangling", Dangling;
  ]

(* Re-validate a (possibly corrupted) final circuit.  This is the whole
   --verify story for baselines; for phoenix it re-checks the mutated
   circuit on top of the report's diagnostics. *)
let structural_diags ~lint_isa ~topo circuit =
  match Structural.validate ~isa:lint_isa ?topology:topo circuit with
  | [] ->
    [
      Diag.make ~pass:"structural" Diag.Info
        (if topo = None then "ISA alphabet, qubit range verified"
         else
           "ISA alphabet, qubit range and coupling-graph compliance verified");
    ]
  | violations -> violations

let declared_of_report (r : Compiler.report) =
  {
    Circuit_lint.two_q = r.Compiler.two_q_count;
    depth_2q = r.Compiler.depth_2q;
    one_q = r.Compiler.one_q_count;
  }

let lint_target (c : compiled) circuit =
  Circuit_lint.target ~isa:c.lint_isa ?topology:c.topo
    ~declared:(declared_of_report c.report) ~program:c.program ~exact:c.exact
    ?layout:c.report.Compiler.layout circuit

let print_diagnostics diags =
  Printf.printf "verify:    %s\n" (Diag.summary diags);
  List.iter (fun d -> Printf.printf "  %s\n" (Diag.to_string d)) diags

let print_findings findings =
  Printf.printf "lint:      %s\n" (Finding.summary findings);
  List.iter (fun f -> Printf.printf "  %s\n" (Finding.to_string f)) findings

let print_hook_findings tagged =
  if tagged <> [] then begin
    Printf.printf "pass lint: %d finding(s) at pass boundaries\n"
      (List.length tagged);
    List.iter
      (fun (pass, f) ->
        Printf.printf "  [after %s] %s\n" pass (Finding.to_string f))
      tagged
  end

let print_certification boundaries =
  let s = Certify.summarize boundaries in
  Printf.printf
    "certify:   %s (%d proved, %d plausible, %d refuted; %.3f ms checking)\n"
    (Certify.overall boundaries)
    s.Certify.proved s.Certify.plausible s.Certify.refuted
    (Certify.total_check_seconds boundaries *. 1e3);
  List.iter
    (fun b -> Printf.printf "  %s\n" (Certify.boundary_to_string b))
    boundaries

let write_cert ~pipeline ~workload ~template out boundaries =
  match out with
  | None -> ()
  | Some path ->
    let json = Certify.to_json ~pipeline ~workload ~template boundaries in
    if path = "-" then print_string json
    else begin
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote %s\n" path
    end

(* One line per executed pass: wall seconds plus the GC counters the
   trace now carries — words allocated inside the pass and the process
   heap high-water mark at pass exit. *)
let print_timing_entries (entries : Pass.trace) =
  List.iter
    (fun (e : Pass.trace_entry) ->
      Printf.printf "time %-9s %.4fs  alloc %.0fw  top-heap %dw\n"
        (e.Pass.pass ^ ":") e.Pass.seconds e.Pass.alloc_words
        e.Pass.top_heap_words)
    entries

let print_cache_stats tier (s : Cache.stats) =
  Printf.printf
    "cache:     tier=%s hits=%d misses=%d disk_hits=%d disk_errors=%d \
     evictions=%d entries=%d bytes=%d\n"
    (Cache.tier_to_string tier) s.Cache.hits s.Cache.misses s.Cache.disk_hits
    s.Cache.disk_errors s.Cache.evictions s.Cache.entries s.Cache.bytes

(* --- parametric templates (--template / --bind) --------------------------

   `compile W --template` compiles once with symbolic per-block angle
   slots and prints the template; `--bind NAME=VAL,...` additionally
   binds the parameters and reports the concrete circuit through the
   same metric/dump surface as a direct compile — by construction,
   `--template --bind '*=1.0' --dump` is byte-identical to a plain
   `--dump` at the same options. *)

let bind_error fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline (Diag.to_string (Diag.make ~pass:"bind" Diag.Error m));
      exit 2)
    fmt

let parse_bindings ~(params : string array) spec =
  let n = Array.length params in
  let values = Array.make n 0.0 and set = Array.make n false in
  let index_of name =
    let rec find k =
      if k >= n then
        bind_error "unknown template parameter %S (the template binds %s)" name
          (if n = 0 then "no parameters"
           else if n = 1 then params.(0)
           else Printf.sprintf "%s .. %s" params.(0) params.(n - 1))
      else if String.equal params.(k) name then k
      else find (k + 1)
    in
    find 0
  in
  List.iter
    (fun pair ->
      if pair <> "" then begin
        match String.index_opt pair '=' with
        | None ->
          bind_error "malformed --bind entry %S (expected NAME=VALUE)" pair
        | Some i ->
          let name = String.sub pair 0 i in
          let raw = String.sub pair (i + 1) (String.length pair - i - 1) in
          (match float_of_string_opt raw with
          | None -> bind_error "non-numeric value %S for parameter %S" raw name
          | Some v ->
            if String.equal name "*" then begin
              Array.fill values 0 n v;
              Array.fill set 0 n true
            end
            else begin
              let k = index_of name in
              values.(k) <- v;
              set.(k) <- true
            end)
      end)
    (String.split_on_char ',' spec);
  Array.iteri
    (fun k bound ->
      if not bound then
        bind_error
          "parameter %s is unbound — its slot angles would stay symbolic \
           (bind it explicitly or use '*=VALUE')"
          params.(k))
    set;
  values

let run_template_mode ~source ~isa ~topology ~compiler ~tier ~budget ~exact
    ~verify ~lint ~certify ~cert_out ~timings ~dump ~draw ~qasm_out ~trace_out
    ~cache_stats ~bind_spec () =
  let h = load source in
  let n = Hamiltonian.num_qubits h in
  let topo = topology_of_string n topology in
  let entry = find_pipeline compiler in
  let options =
    {
      Compiler.default_options with
      isa;
      exact;
      verify;
      cache = tier;
      budget;
      target =
        (match topo with
        | None -> Compiler.Logical
        | Some t -> Compiler.Hardware t);
    }
  in
  let cert_acc = ref [] in
  let hooks = if certify then [ Hooks.certify cert_acc ] else [] in
  let tmpl =
    match
      Pipelines.compile_template ~options ~protect:true ~hooks
        ~certified:certify entry h
    with
    | Ok t -> t
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  (* Print (and persist) the certificate before any lint/verify exit so
     a refuted boundary is always visible alongside the finding that
     tripped the exit code. *)
  let finish_certification () =
    if certify then begin
      let bs = Certify.boundaries cert_acc in
      print_certification bs;
      write_cert ~pipeline:compiler ~workload:source ~template:true cert_out bs
    end
  in
  let report = Template.report tmpl in
  let lint_isa =
    match isa with
    | Compiler.Cnot_isa -> Structural.Cnot_basis
    | Compiler.Su4_isa -> Structural.Su4_basis
  in
  let print_timings extra =
    if timings then print_timing_entries (report.Compiler.trace @ extra)
  in
  let write_trace bind_trace =
    match trace_out with
    | Some path ->
      let json =
        Pass.trace_to_json ~compiler ~workload:source
          ~cache:report.Compiler.cache_stats
          ~degradations:report.Compiler.degradations
          (report.Compiler.trace @ bind_trace)
      in
      if path = "-" then print_endline json
      else begin
        let oc = open_out path in
        output_string oc json;
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path
      end
    | None -> ()
  in
  match bind_spec with
  | None ->
    (* Unbound dump: the parameter table, slot expressions and slotted
       prototype.  Linting the prototype demonstrates the unbound-slot
       finding class (and exits 4): templates are certified by linting
       their *bound* circuits. *)
    print_string (Template.dump tmpl);
    print_timings [];
    write_trace [];
    finish_certification ();
    if lint then begin
      let findings =
        Registry.run
          (Circuit_lint.target ~isa:lint_isa ?topology:topo
             ~declared:(declared_of_report report) (Template.circuit tmpl))
        @ Resilience_lint.conformance report
      in
      print_findings findings;
      if Finding.has_errors findings then exit 4
    end;
    if certify && not (Certify.all_proved (Certify.boundaries cert_acc)) then
      exit 4
  | Some spec ->
    let theta = parse_bindings ~params:(Template.params tmpl) spec in
    let circuit, bind_trace = Template.bind_with_trace tmpl theta in
    let diagnostics =
      if not verify then []
      else
        report.Compiler.diagnostics @ structural_diags ~lint_isa ~topo circuit
    in
    let findings =
      if lint then
        Registry.run
          (Circuit_lint.target ~isa:lint_isa ?topology:topo
             ~declared:(declared_of_report report) circuit)
        @ Resilience_lint.conformance report
      else []
    in
    Printf.printf "qubits:    %d\n" (Circuit.num_qubits circuit);
    Printf.printf "gates:     %d\n" (Circuit.length circuit);
    Printf.printf "1q gates:  %d\n" (Circuit.count_1q circuit);
    Printf.printf "2q gates:  %d\n" (Circuit.count_2q circuit);
    Printf.printf "cnot cost: %d\n" (Circuit.count_cnot circuit);
    Printf.printf "depth:     %d\n" (Circuit.depth circuit);
    Printf.printf "depth-2q:  %d\n" (Circuit.depth_2q circuit);
    Printf.printf "swaps:     %d\n" report.Compiler.num_swaps;
    if cache_stats then print_cache_stats tier report.Compiler.cache_stats;
    if verify then print_diagnostics diagnostics;
    if lint then print_findings findings;
    finish_certification ();
    print_timings bind_trace;
    if dump then
      List.iter
        (fun g -> print_endline (Gate.to_string g))
        (Circuit.gates circuit);
    if draw then print_string (Phoenix_circuit.Draw.to_string circuit);
    (match qasm_out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Phoenix_circuit.Qasm.to_string circuit);
      close_out oc;
      Printf.printf "wrote %s\n" path
    | None -> ());
    write_trace bind_trace;
    if verify && Diag.has_errors diagnostics then exit 3;
    if lint && Finding.has_errors findings then exit 4;
    if certify && not (Certify.all_proved (Certify.boundaries cert_acc)) then
      exit 4

(* --- streaming compilation (--stream) ------------------------------------

   `compile W --stream N` feeds N first-order Trotter steps of the
   workload through the pipeline one chunk per step: each chunk is
   grouped, simplified, synthesized and (with --dump) emitted before the
   next one starts, so peak working memory is bounded by the chunk, not
   the whole program.  Lint/verify/certify hooks fire at every pass
   boundary of every chunk; the summary block, timings and trace are
   aggregated over the stream.  Logical targets only — chunks route
   independently, so concatenating per-chunk placements would be
   unsound. *)

let run_stream_mode ~source ~isa ~topology ~compiler ~tier ~budget ~exact
    ~verify ~lint ~certify ~cert_out ~timings ~dump ~draw ~qasm_out ~trace_out
    ~cache_stats ~fault ~steps () =
  if steps < 1 then begin
    Printf.eprintf "--stream needs a positive number of Trotter steps\n";
    exit 2
  end;
  let h = load source in
  let n = Hamiltonian.num_qubits h in
  if topology_of_string n topology <> None then begin
    Printf.eprintf
      "--stream is a logical-target mode (chunks route independently); drop \
       --topology and route the concatenated circuit separately\n";
    exit 2
  end;
  let entry = find_pipeline compiler in
  if
    entry.Pipelines.two_local_only
    && List.exists
         (fun (p, _) -> Phoenix_pauli.Pauli_string.weight p > 2)
         (Hamiltonian.trotter_gadgets h)
  then begin
    Printf.eprintf "the %s compiler only handles 2-local workloads\n"
      entry.Pipelines.name;
    exit 2
  end;
  if entry.Pipelines.requires_topology then begin
    Printf.eprintf "the %s compiler needs a --topology, which --stream \
                    does not support\n"
      entry.Pipelines.name;
    exit 2
  end;
  let options =
    {
      Compiler.default_options with
      isa;
      exact;
      verify;
      cache = tier;
      budget;
      target = Compiler.Logical;
    }
  in
  let cert_acc = ref [] in
  let hook_findings = ref [] and hook_diags = ref [] in
  let hooks =
    (if lint then [ Hooks.lint hook_findings ] else [])
    @ (if verify then [ Hooks.translation_validate hook_diags ] else [])
    @ if certify then [ Hooks.certify cert_acc ] else []
  in
  (* Keep the concatenated circuit only when something downstream needs
     it; otherwise every chunk's circuit is dropped after emission and
     the run's footprint stays bounded by the chunk size. *)
  let keep_circuit =
    qasm_out <> None || draw || lint || verify || fault <> No_fault
  in
  let emit =
    if dump then
      Some
        (fun c ->
          List.iter (fun g -> print_endline (Gate.to_string g)) (Circuit.gates c))
    else None
  in
  let sr =
    Pipelines.compile_stream ~options ~protect:true ~hooks ~keep_circuit ?emit
      ~steps entry h
  in
  let report = sr.Compiler.s_report in
  let circuit = inject_fault fault report.Compiler.circuit in
  let lint_isa =
    match isa with
    | Compiler.Cnot_isa -> Structural.Cnot_basis
    | Compiler.Su4_isa -> Structural.Su4_basis
  in
  let diagnostics =
    if not verify then []
    else begin
      let from_report =
        report.Compiler.diagnostics @ List.rev !hook_diags
      in
      if fault = No_fault then from_report
      else
        from_report @ Structural.validate ~isa:lint_isa circuit
    end
  in
  let findings =
    if lint then
      let step_program = snd (program_of_entry entry options h) in
      let program =
        (n, List.concat (List.init steps (fun _ -> step_program)))
      in
      Registry.run
        (Circuit_lint.target ~isa:lint_isa
           ~declared:(declared_of_report report) ~program ~exact circuit)
      @ Resilience_lint.conformance report
    else []
  in
  (* metrics from the aggregated trace's final snapshot: gate counts are
     additive under concatenation, so these are exact whether or not the
     circuit was kept. *)
  let final =
    match List.rev report.Compiler.trace with
    | e :: _ -> e.Pass.after
    | [] -> Pass.metrics_zero
  in
  Printf.printf "qubits:    %d\n" n;
  Printf.printf "chunks:    %d\n" sr.Compiler.s_chunks;
  Printf.printf "gadgets:   %d\n" sr.Compiler.s_gadgets;
  Printf.printf "gates:     %d\n" final.Pass.gates;
  Printf.printf "1q gates:  %d\n" final.Pass.one_q;
  Printf.printf "2q gates:  %d\n" final.Pass.two_q;
  Printf.printf "depth-2q:  %d\n" report.Compiler.depth_2q;
  Printf.printf "peak heap: %dw\n" sr.Compiler.s_peak_heap_words;
  if report.Compiler.degradations <> [] then
    Printf.printf "degraded:  %s\n"
      (Resilience.aggregate_to_string report.Compiler.degradations);
  if cache_stats then print_cache_stats tier report.Compiler.cache_stats;
  if verify then print_diagnostics diagnostics;
  if lint then begin
    print_findings findings;
    print_hook_findings (List.rev !hook_findings)
  end;
  if certify then begin
    print_certification (Certify.boundaries cert_acc);
    write_cert ~pipeline:compiler ~workload:source ~template:false cert_out
      (Certify.boundaries cert_acc)
  end;
  if timings then print_timing_entries report.Compiler.trace;
  if draw then print_string (Phoenix_circuit.Draw.to_string circuit);
  (match qasm_out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Phoenix_circuit.Qasm.to_string circuit);
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None -> ());
  (match trace_out with
  | Some path ->
    let json =
      Pass.trace_to_json ~compiler ~workload:source
        ~cache:report.Compiler.cache_stats
        ~degradations:report.Compiler.degradations report.Compiler.trace
    in
    if path = "-" then print_endline json
    else begin
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path
    end
  | None -> ());
  if verify && Diag.has_errors diagnostics then exit 3;
  if lint
     && (Finding.has_errors findings
        || Finding.has_errors (List.map snd (List.rev !hook_findings)))
  then exit 4;
  if certify && not (Certify.all_proved (Certify.boundaries cert_acc)) then
    exit 4

open Cmdliner

let source_arg =
  let doc = "Hamiltonian file (coeff pauli-string lines) or builtin workload." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOURCE" ~doc)

let isa_arg =
  let doc = "Target ISA: cnot or su4." in
  Arg.(value & opt (enum [ "cnot", Compiler.Cnot_isa; "su4", Compiler.Su4_isa ]) Compiler.Cnot_isa & info [ "isa" ] ~doc)

let topology_arg =
  let doc = "Device topology: all-to-all, heavy-hex, line, ring or grid." in
  Arg.(value & opt string "all-to-all" & info [ "topology" ] ~doc)

let baseline_arg =
  let doc = "Compiler: phoenix, tket, paulihedral, tetris, 2qan or naive." in
  Arg.(value & opt string "phoenix" & info [ "compiler" ] ~doc)

let dump_arg =
  let doc = "Print the full gate list." in
  Arg.(value & flag & info [ "dump" ] ~doc)

let draw_arg =
  let doc = "Render an ASCII circuit diagram (small circuits only)." in
  Arg.(value & flag & info [ "draw" ] ~doc)

let qasm_arg =
  let doc = "Write the compiled circuit to FILE as OpenQASM 2.0." in
  Arg.(value & opt (some string) None & info [ "qasm" ] ~docv:"FILE" ~doc)

let exact_arg =
  let doc = "Restrict reordering to exact transformations." in
  Arg.(value & flag & info [ "exact" ] ~doc)

let verify_arg =
  let doc =
    "Translation-validate the compilation (per-group equivalence checks with \
     naive fallback, structural/ISA/coupling validation) and print the \
     diagnostics.  Exits 3 when an error-severity diagnostic remains."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let lint_arg =
  let doc =
    "Run the static analyzer (see $(b,phoenix analyze)) over the compiled \
     circuit and print the findings.  Exits 4 when an error-severity \
     finding remains."
  in
  Arg.(value & flag & info [ "lint" ] ~doc)

let timings_arg =
  let doc = "Print per-pass compile times." in
  Arg.(value & flag & info [ "timings" ] ~doc)

let pipeline_arg =
  let doc =
    "Pipeline to compile with (synonym for $(b,--compiler); see \
     $(b,phoenix passes) for the registry)."
  in
  Arg.(value & opt (some string) None & info [ "pipeline" ] ~docv:"NAME" ~doc)

let trace_arg =
  let doc =
    "Write the machine-readable pass trace (per-pass wall time and \
     before/after/delta circuit metrics, schema phoenix-trace-v1) to \
     FILE as JSON; $(b,-) for stdout."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let fault_arg =
  let doc =
    "Testing hook: corrupt the compiled circuit before verification and \
     linting (none, out-of-isa, nan-angle, zero-angle, dangling) to \
     exercise the detection paths and exit codes."
  in
  Arg.(value & opt (enum fault_enum) No_fault & info [ "inject-fault" ] ~doc)

(* Validated by hand (not Arg.enum) so a bad tier is a usage error under
   the CLI's 0/2/3/4 exit contract rather than cmdliner's 124. *)
let cache_arg =
  let doc =
    "Synthesis cache tier: $(b,off), $(b,mem) (in-process LRU, the \
     default) or $(b,disk) (adds the persistent tier under \
     \\$PHOENIX_CACHE_DIR).  Cached and cold compilation are \
     bit-identical."
  in
  Arg.(value & opt string "mem" & info [ "cache" ] ~docv:"TIER" ~doc)

let cache_tier_of_string s =
  match Cache.tier_of_string s with
  | Some t -> t
  | None ->
    Printf.eprintf "unknown cache tier %S (off, mem, disk)\n" s;
    exit 2

let timeout_arg =
  let doc =
    "Give the compile a deadline of SECONDS on the monotonic clock.  On \
     expiry, passes with a registered degradation ladder fall back to \
     cheaper strategies (greedy synthesis to the naive ladder, dense \
     equivalence checking to the Pauli-propagation certificate), each \
     step reported as a Warning and recorded in the report and trace; a \
     pass with no fallback rung stops the run with exit code 5."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let budget_of_timeout = function
  | None -> Budget.none
  | Some s when Float.is_finite s && s >= 0.0 -> Budget.of_timeout_s s
  | Some s ->
    Printf.eprintf
      "invalid --timeout %g (needs a finite, non-negative number of seconds)\n"
      s;
    exit 2

let template_arg =
  let doc =
    "Parametric compilation: run the pipeline once with symbolic per-block \
     angle slots and print the template (parameter table, slot expressions, \
     slotted circuit) instead of a concrete compile.  Combine with \
     $(b,--bind) to bind the parameters and report the concrete circuit.  \
     Only pipelines with block-structured IR (phoenix) support templates."
  in
  Arg.(value & flag & info [ "template" ] ~doc)

let bind_arg =
  let doc =
    "Bind a compiled template's parameters (implies $(b,--template)): \
     comma-separated NAME=VALUE pairs over the template's theta<k> \
     parameters; $(b,*=VALUE) binds every parameter at once.  Unknown \
     names and unbound parameters are usage errors (exit 2).  Binding \
     every parameter to 1.0 reproduces the plain compile bit-identically."
  in
  Arg.(value & opt (some string) None & info [ "bind" ] ~docv:"BINDINGS" ~doc)

let stream_arg =
  let doc =
    "Streaming compilation: compile STEPS first-order Trotter steps of the \
     workload one chunk per step, bounding peak memory by the chunk rather \
     than the whole program.  With $(b,--dump) each chunk's gates stream out \
     as the chunk finishes; the summary, timings and trace aggregate over \
     the stream.  Logical targets only (chunks route independently), and \
     incompatible with $(b,--template)/$(b,--bind)."
  in
  Arg.(value & opt (some int) None & info [ "stream" ] ~docv:"STEPS" ~doc)

let certify_arg =
  let doc =
    "Certify the compilation with the symbolic translation validator: every \
     pass boundary is audited against the pass's claimed certificate in the \
     Clifford-frame × phase-polynomial domain (no dense simulation; works \
     on routed circuits and unbound templates alike).  Prints one verdict \
     line per boundary and exits 4 unless every boundary is proved."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let cert_out_arg =
  let doc =
    "Write the certificate (schema phoenix-cert-v1: overall verdict, \
     per-boundary claims, verdicts and checker timings) to FILE as JSON; \
     $(b,-) for stdout.  Implies $(b,--certify)."
  in
  Arg.(value & opt (some string) None & info [ "cert" ] ~docv:"FILE" ~doc)

let cache_stats_arg =
  let doc =
    "Print the synthesis-cache counters for this run (hits, misses, disk \
     hits, disk errors, evictions, resident entries/bytes)."
  in
  Arg.(value & flag & info [ "cache-stats" ] ~doc)

let compile_cmd =
  let run source isa topology compiler pipeline dump exact verify lint certify
      cert_out timings qasm_out draw fault trace_out cache cache_stats timeout
      template bind_spec stream =
    let compiler = Option.value pipeline ~default:compiler in
    let tier = cache_tier_of_string cache in
    let budget = budget_of_timeout timeout in
    let certify = certify || cert_out <> None in
    if stream <> None && (template || bind_spec <> None) then begin
      Printf.eprintf
        "--stream cannot be combined with --template/--bind (bind the \
         template, then stream the bound program)\n";
      exit 2
    end;
    match stream with
    | Some steps ->
      run_stream_mode ~source ~isa ~topology ~compiler ~tier ~budget ~exact
        ~verify ~lint ~certify ~cert_out ~timings ~dump ~draw ~qasm_out
        ~trace_out ~cache_stats ~fault ~steps ()
    | None ->
    if template || bind_spec <> None then
      run_template_mode ~source ~isa ~topology ~compiler ~tier ~budget ~exact
        ~verify ~lint ~certify ~cert_out ~timings ~dump ~draw ~qasm_out
        ~trace_out ~cache_stats ~bind_spec ()
    else begin
    let cert_acc = ref [] in
    let compiled =
      compile_source ~cache:tier ~budget
        ?cert_acc:(if certify then Some cert_acc else None)
        ~source ~isa ~topology ~compiler ~exact ~verify ~lint ()
    in
    let circuit = inject_fault fault compiled.report.Compiler.circuit in
    let diagnostics =
      if not verify then []
      else begin
        let from_report =
          compiled.report.Compiler.diagnostics @ compiled.hook_diags
        in
        if fault = No_fault then from_report
        else
          (* re-check only the mutated circuit; keep the report's own info *)
          from_report
          @
          if compiled.report.Compiler.diagnostics <> [] then
            Structural.validate ~isa:compiled.lint_isa ?topology:compiled.topo
              circuit
          else
            structural_diags ~lint_isa:compiled.lint_isa ~topo:compiled.topo
              circuit
      end
    in
    let findings =
      if lint then
        Registry.run (lint_target compiled circuit)
        @ Resilience_lint.conformance compiled.report
      else []
    in
    Printf.printf "qubits:    %d\n" (Circuit.num_qubits circuit);
    Printf.printf "gates:     %d\n" (Circuit.length circuit);
    Printf.printf "1q gates:  %d\n" (Circuit.count_1q circuit);
    Printf.printf "2q gates:  %d\n" (Circuit.count_2q circuit);
    Printf.printf "cnot cost: %d\n" (Circuit.count_cnot circuit);
    Printf.printf "depth:     %d\n" (Circuit.depth circuit);
    Printf.printf "depth-2q:  %d\n" (Circuit.depth_2q circuit);
    Printf.printf "swaps:     %d\n" compiled.report.Compiler.num_swaps;
    if compiled.report.Compiler.degradations <> [] then
      Printf.printf "degraded:  %s\n"
        (Resilience.aggregate_to_string compiled.report.Compiler.degradations);
    if cache_stats then
      print_cache_stats tier compiled.report.Compiler.cache_stats;
    if verify then print_diagnostics diagnostics;
    if lint then begin
      print_findings findings;
      print_hook_findings compiled.hook_findings
    end;
    if certify then begin
      print_certification (Certify.boundaries cert_acc);
      write_cert ~pipeline:compiler ~workload:source ~template:false cert_out
        (Certify.boundaries cert_acc)
    end;
    if timings then print_timing_entries compiled.report.Compiler.trace;
    if dump then
      List.iter
        (fun g -> print_endline (Gate.to_string g))
        (Circuit.gates circuit);
    if draw then print_string (Phoenix_circuit.Draw.to_string circuit);
    (match qasm_out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Phoenix_circuit.Qasm.to_string circuit);
      close_out oc;
      Printf.printf "wrote %s\n" path
    | None -> ());
    (match trace_out with
    | Some path ->
      let json =
        Pass.trace_to_json ~compiler ~workload:source
          ~cache:compiled.report.Compiler.cache_stats
          ~degradations:compiled.report.Compiler.degradations
          compiled.report.Compiler.trace
      in
      if path = "-" then print_endline json
      else begin
        let oc = open_out path in
        output_string oc json;
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path
      end
    | None -> ());
    if verify && Diag.has_errors diagnostics then exit 3;
    if lint
       && (Finding.has_errors findings
          || Finding.has_errors (List.map snd compiled.hook_findings))
    then exit 4;
    if certify && not (Certify.all_proved (Certify.boundaries cert_acc)) then
      exit 4
    end
  in
  let doc = "Compile a Hamiltonian-simulation program." in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const run $ source_arg $ isa_arg $ topology_arg $ baseline_arg $ pipeline_arg $ dump_arg $ exact_arg $ verify_arg $ lint_arg $ certify_arg $ cert_out_arg $ timings_arg $ qasm_arg $ draw_arg $ fault_arg $ trace_arg $ cache_arg $ cache_stats_arg $ timeout_arg $ template_arg $ bind_arg $ stream_arg)

let info_cmd =
  let run source =
    let h = load source in
    Printf.printf "qubits:   %d\n" (Hamiltonian.num_qubits h);
    Printf.printf "terms:    %d\n" (Hamiltonian.num_terms h);
    Printf.printf "max wt:   %d\n" (Hamiltonian.max_weight h);
    Printf.printf "blocks:   %s\n"
      (match Hamiltonian.term_blocks h with
      | Some bs -> string_of_int (List.length bs)
      | None -> "-")
  in
  let doc = "Describe a workload." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ source_arg)

let bench_cmd =
  let artifact =
    let doc = "Artifact: table1, fig5, fig6, table3, table4 or fig8." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ARTIFACT" ~doc)
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Use a reduced benchmark subset.")
  in
  let run artifact quick =
    let fmt = Format.std_formatter in
    let labels = if quick then Some Phoenix_experiments.Workloads.uccsd_quick_labels else None in
    match artifact with
    | "table1" -> Phoenix_experiments.Table1.print fmt (Phoenix_experiments.Table1.run ?labels ())
    | "fig5" -> Phoenix_experiments.Fig5.print fmt (Phoenix_experiments.Fig5.run ?labels ())
    | "fig6" -> Phoenix_experiments.Fig6.print fmt (Phoenix_experiments.Fig6.run ?labels ())
    | "table3" -> Phoenix_experiments.Table3.print fmt (Phoenix_experiments.Table3.run ?labels ())
    | "table4" -> Phoenix_experiments.Table4.print fmt (Phoenix_experiments.Table4.run ())
    | "fig8" ->
      let scales = if quick then [ 0.1; 0.8 ] else Phoenix_experiments.Fig8.default_scales in
      Phoenix_experiments.Fig8.print fmt (Phoenix_experiments.Fig8.run ~scales ())
    | other ->
      Printf.eprintf "unknown artifact %S\n" other;
      exit 2
  in
  let doc = "Regenerate one of the paper's tables/figures." in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ artifact $ quick)

let simulate_cmd =
  let shots_arg =
    Arg.(value & opt int 0 & info [ "shots" ] ~doc:"Sample N measurement outcomes.")
  in
  let run source shots =
    let h = load source in
    let n = Hamiltonian.num_qubits h in
    if n > 14 then begin
      Printf.eprintf "simulation limited to 14 qubits (got %d)\n" n;
      exit 2
    end;
    let r = Compiler.compile h in
    let v = Phoenix_linalg.Statevector.of_circuit r.Compiler.circuit in
    Printf.printf "compiled: %d CNOTs, 2Q depth %d\n" r.Compiler.two_q_count
      r.Compiler.depth_2q;
    Printf.printf "<H> on the evolved |0...0> state: %+.6f\n"
      (Phoenix_linalg.Statevector.expectation v h);
    let probs = Phoenix_linalg.Statevector.probabilities v in
    let indexed = Array.mapi (fun k p -> p, k) probs in
    Array.sort (fun (a, _) (b, _) -> compare b a) indexed;
    Printf.printf "top basis states:\n";
    Array.iteri
      (fun rank (p, k) ->
        if rank < 8 && p > 1e-6 then begin
          let bits = String.init n (fun q -> if (k lsr (n - 1 - q)) land 1 = 1 then '1' else '0') in
          Printf.printf "  |%s>  %.4f\n" bits p
        end)
      indexed;
    if shots > 0 then begin
      let rng = Phoenix_util.Prng.create 1234 in
      let counts = Hashtbl.create 16 in
      for _ = 1 to shots do
        let k = Phoenix_linalg.Statevector.sample rng v in
        Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
      done;
      Printf.printf "%d shots:\n" shots;
      Hashtbl.iter
        (fun k c ->
          let bits = String.init n (fun q -> if (k lsr (n - 1 - q)) land 1 = 1 then '1' else '0') in
          Printf.printf "  |%s>  %d\n" bits c)
        counts
    end
  in
  let doc = "Compile and state-vector-simulate a workload (<= 14 qubits)." in
  Cmd.v (Cmd.info "simulate" ~doc) Term.(const run $ source_arg $ shots_arg)

(* --- analyze: IR statistics (legacy --stats view) ------------------------ *)

let print_ir_stats h =
  let n = Hamiltonian.num_qubits h in
  let gadgets = Hamiltonian.trotter_gadgets h in
  let hist = Array.make (n + 1) 0 in
  List.iter
    (fun (p, _) ->
      let w = Phoenix_pauli.Pauli_string.weight p in
      hist.(w) <- hist.(w) + 1)
    gadgets;
  Printf.printf "Pauli-weight histogram (raw IR):\n";
  Array.iteri (fun w c -> if c > 0 then Printf.printf "  weight %2d: %d\n" w c) hist;
  let groups =
    match Hamiltonian.term_blocks h with
    | Some blocks ->
      Phoenix.Group.of_blocks n
        (List.map
           (List.map (fun (t : Phoenix_pauli.Pauli_term.t) ->
                t.Phoenix_pauli.Pauli_term.pauli,
                2.0 *. t.Phoenix_pauli.Pauli_term.coeff))
           blocks)
    | None -> Phoenix.Group.group_gadgets n gadgets
  in
  let cliff_hist = Hashtbl.create 8 in
  let total_cliffs = ref 0 in
  List.iter
    (fun g ->
      let cfg = Phoenix.Simplify.run n g.Phoenix.Group.terms in
      List.iter
        (function
          | Phoenix.Simplify.Cliff c ->
            incr total_cliffs;
            let k = Phoenix_pauli.Clifford2q.kind_to_string c.Phoenix_pauli.Clifford2q.kind in
            Hashtbl.replace cliff_hist k
              (1 + Option.value ~default:0 (Hashtbl.find_opt cliff_hist k))
          | _ -> ())
        cfg)
    groups;
  Printf.printf "IR groups: %d (mean size %.1f terms)\n" (List.length groups)
    (float_of_int (List.length gadgets) /. float_of_int (max 1 (List.length groups)));
  Printf.printf "Clifford2Q conjugations: %d total\n" !total_cliffs;
  Printf.printf "generator usage (Eq. 5 set):\n";
  List.iter
    (fun k ->
      let name = Phoenix_pauli.Clifford2q.kind_to_string k in
      Printf.printf "  %-7s %d\n" name
        (Option.value ~default:0 (Hashtbl.find_opt cliff_hist name)))
    Phoenix_pauli.Clifford2q.all_kinds

(* --- analyze: the static analyzer ---------------------------------------- *)

let analyze_cmd =
  let json_arg =
    let doc = "Emit the findings as a JSON array on stdout (nothing else)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let stats_arg =
    let doc = "Also print IR statistics (weight histogram, generator usage)." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let determinism_arg =
    let doc =
      "Also audit parallel-compilation determinism by replaying the \
       group compilation under permuted work orders (phoenix compiler \
       only)."
    in
    Arg.(value & flag & info [ "determinism" ] ~doc)
  in
  let list_arg =
    let doc = "List the registered analyses and exit." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let only_arg =
    let doc =
      "Run only the named analyses (comma-separated registry names; see \
       $(b,--list)).  Unknown names are a usage error (exit 2)."
    in
    Arg.(value & opt string "" & info [ "only" ] ~docv:"NAMES" ~doc)
  in
  let skip_arg =
    let doc =
      "Skip the named analyses (comma-separated; composes with \
       $(b,--only)).  Unknown names are a usage error (exit 2)."
    in
    Arg.(value & opt string "" & info [ "skip" ] ~docv:"NAMES" ~doc)
  in
  let opt_source_arg =
    let doc = "Hamiltonian file or builtin workload." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SOURCE" ~doc)
  in
  let run source isa topology compiler exact json stats determinism list_only
      only_spec skip_spec fault =
    if list_only then begin
      List.iter
        (fun (a : Registry.analysis) ->
          Printf.printf "%-24s %s\n" a.Registry.name a.Registry.description)
        Registry.all;
      exit 0
    end;
    let source =
      match source with
      | Some s -> s
      | None ->
        Printf.eprintf "analyze: a SOURCE is required (or use --list)\n";
        exit 2
    in
    let names_of spec =
      match List.filter (fun s -> s <> "") (String.split_on_char ',' spec) with
      | [] -> None
      | l -> Some l
    in
    let only = names_of only_spec and skip = names_of skip_spec in
    (match
       Registry.unknown
         (Option.value only ~default:[] @ Option.value skip ~default:[])
     with
    | [] -> ()
    | missing ->
      Printf.eprintf "analyze: unknown analyses: %s\navailable: %s\n"
        (String.concat ", " missing)
        (String.concat ", " (Registry.names ()));
      exit 2);
    let compiled =
      compile_source ~source ~isa ~topology ~compiler ~exact ~verify:false
        ~lint:false ()
    in
    let circuit = inject_fault fault compiled.report.Compiler.circuit in
    let findings = Registry.run ?only ?skip (lint_target compiled circuit) in
    let findings =
      if determinism then begin
        if compiler <> "phoenix" then begin
          Printf.eprintf
            "analyze: --determinism only applies to the phoenix compiler\n";
          exit 2
        end;
        let h = load source in
        let n = Hamiltonian.num_qubits h in
        let options =
          {
            Compiler.default_options with
            isa;
            exact;
            target =
              (match compiled.topo with
              | None -> Compiler.Logical
              | Some t -> Compiler.Hardware t);
          }
        in
        let groups =
          match Hamiltonian.term_blocks h with
          | Some blocks ->
            Phoenix.Group.of_blocks n
              (List.map
                 (List.map (fun (t : Phoenix_pauli.Pauli_term.t) ->
                      t.Phoenix_pauli.Pauli_term.pauli,
                      2.0 *. t.Phoenix_pauli.Pauli_term.coeff))
                 blocks)
          | None ->
            Phoenix.Group.group_gadgets ~exact n
              (Hamiltonian.trotter_gadgets h)
        in
        findings @ Determinism.audit_groups ~options n groups
      end
      else findings
    in
    if json then print_endline (Finding.list_to_json findings)
    else begin
      Printf.printf "circuit:   %d qubits, %d gates (%d 2Q, depth-2q %d)\n"
        (Circuit.num_qubits circuit) (Circuit.length circuit)
        (Circuit.count_2q circuit) (Circuit.depth_2q circuit);
      let selected =
        List.filter
          (fun n ->
            (match only with None -> true | Some l -> List.mem n l)
            && match skip with None -> true | Some l -> not (List.mem n l))
          (Registry.names ())
      in
      Printf.printf "analyses:  %s\n" (String.concat ", " selected);
      print_findings findings;
      if stats then print_ir_stats (load source)
    end;
    if Finding.has_errors findings then exit 4
  in
  let doc =
    "Run the static analyzer over a compiled workload: qubit liveness, ISA \
     and coupling conformance, metric certification, layer consistency, \
     angle sanity, symbolic translation validation — plus optional \
     compiler-internal determinism audits.  $(b,--only)/$(b,--skip) select \
     subsets by registry name.  Exits 4 on error-severity findings."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ opt_source_arg $ isa_arg $ topology_arg $ baseline_arg $ exact_arg $ json_arg $ stats_arg $ determinism_arg $ list_arg $ only_arg $ skip_arg $ fault_arg)

(* --- certify: proof-carrying pass certificates ---------------------------- *)

let certify_cmd =
  let json_arg =
    let doc =
      "Write the certificate (schema phoenix-cert-v1) to FILE as JSON; \
       $(b,-) for stdout."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let template_flag =
    let doc =
      "Certify a parametric template compile: the slotted circuit is checked \
       symbolically over the angle arena, so one certificate covers every \
       parameter binding (phoenix pipeline only)."
    in
    Arg.(value & flag & info [ "template" ] ~doc)
  in
  let run source isa topology compiler pipeline exact template json_out =
    let compiler = Option.value pipeline ~default:compiler in
    let cert_acc = ref [] in
    if template then begin
      let h = load source in
      let n = Hamiltonian.num_qubits h in
      let topo = topology_of_string n topology in
      let entry = find_pipeline compiler in
      let options =
        {
          Compiler.default_options with
          isa;
          exact;
          target =
            (match topo with
            | None -> Compiler.Logical
            | Some t -> Compiler.Hardware t);
        }
      in
      match
        Pipelines.compile_template ~options ~protect:true
          ~hooks:[ Hooks.certify cert_acc ] ~certified:true entry h
      with
      | Ok _ -> ()
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    end
    else
      ignore
        (compile_source ~cert_acc ~source ~isa ~topology ~compiler ~exact
           ~verify:false ~lint:false ());
    let bs = Certify.boundaries cert_acc in
    print_certification bs;
    write_cert ~pipeline:compiler ~workload:source ~template json_out bs;
    if not (Certify.all_proved bs) then exit 4
  in
  let doc =
    "Compile a workload under the symbolic translation validator and report \
     the certificate: each pass claims a rewrite freedom (unchanged, \
     order-preserving, reordering, routing) and an independent checker \
     replays the claim in the Clifford-frame × phase-polynomial abstract \
     domain — no dense simulation, sound on routed circuits and unbound \
     templates.  Exits 4 unless every pass boundary is proved."
  in
  Cmd.v (Cmd.info "certify" ~doc)
    Term.(const run $ source_arg $ isa_arg $ topology_arg $ baseline_arg $ pipeline_arg $ exact_arg $ template_flag $ json_arg)

(* --- passes: the pipeline/pass registry ---------------------------------- *)

let passes_cmd =
  let list_arg =
    let doc = "List every registered pass (the default)." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let run list_only pipeline =
    ignore list_only;
    match pipeline with
    | Some name ->
      let entry = find_pipeline name in
      Printf.printf "%s — %s\n" entry.Pipelines.name
        entry.Pipelines.description;
      Printf.printf "passes (hardware target, verification on):\n";
      let repr =
        {
          Compiler.default_options with
          Compiler.target = Compiler.Hardware (Topology.line 4);
          verify = true;
        }
      in
      List.iter
        (fun (p : Pass.t) ->
          Printf.printf "  %-10s %s\n" p.Pass.name p.Pass.description)
        (entry.Pipelines.passes repr)
    | None ->
      Printf.printf "pipelines:\n";
      List.iter
        (fun (e : Pipelines.entry) ->
          Printf.printf "  %-12s %s\n" e.Pipelines.name
            e.Pipelines.description)
        Pipelines.all;
      Printf.printf "\npasses (name, description, used by):\n";
      List.iter
        (fun (c : Pipelines.catalog_entry) ->
          Printf.printf "  %-10s %s\n  %10s   used by: %s\n" c.Pipelines.pass_name
            c.Pipelines.pass_description ""
            (String.concat ", " c.Pipelines.pipelines))
        (Pipelines.catalog ())
  in
  let doc =
    "List the registered pipelines and passes: each pass's name, \
     description and the pipelines that use it.  With $(b,--pipeline) \
     NAME, show that pipeline's pass list in execution order."
  in
  Cmd.v (Cmd.info "passes" ~doc) Term.(const run $ list_arg $ pipeline_arg)

(* --- cache: the persistent synthesis cache ------------------------------- *)

let cache_cmd =
  let json_arg =
    let doc = "Emit machine-readable JSON on stdout (nothing else)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let stats_sub =
    let run json =
      let dir = Cache.dir () in
      let files = Cache.Persist.list_files ~dir () in
      let entries = List.length files in
      let bytes = Cache.Persist.disk_bytes ~dir () in
      if json then
        Printf.printf
          "{ \"schema\": \"phoenix-cache-stats-v1\", \"dir\": \"%s\", \
           \"entries\": %d, \"bytes\": %d, \"memory_budget_bytes\": %d }\n"
          (String.concat "\\\\" (String.split_on_char '\\' dir))
          entries bytes (Cache.budget ())
      else begin
        Printf.printf "dir:       %s\n" dir;
        Printf.printf "entries:   %d\n" entries;
        Printf.printf "bytes:     %d\n" bytes;
        Printf.printf "budget:    %d (memory tier)\n" (Cache.budget ())
      end
    in
    let doc = "Show the persistent synthesis-cache directory, entry count and size." in
    Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ json_arg)
  in
  let clear_sub =
    let run () =
      let removed = Cache.Persist.clear ~dir:(Cache.dir ()) () in
      Printf.printf "removed %d cache entries from %s\n" removed (Cache.dir ())
    in
    let doc = "Remove every entry from the persistent synthesis cache." in
    Cmd.v (Cmd.info "clear" ~doc) Term.(const run $ const ())
  in
  let warm_sub =
    let run source isa topology compiler pipeline exact =
      let compiler = Option.value pipeline ~default:compiler in
      let compiled =
        compile_source ~cache:Cache.Disk ~source ~isa ~topology ~compiler
          ~exact ~verify:false ~lint:false ()
      in
      let s = compiled.report.Compiler.cache_stats in
      Printf.printf
        "warmed %s (%s): %d groups, %d new entries persisted, %d hits / %d \
         misses\n"
        source compiler compiled.report.Compiler.num_groups s.Cache.insertions
        s.Cache.hits s.Cache.misses;
      Printf.printf "cache dir: %s (%d entries, %d bytes)\n" (Cache.dir ())
        (List.length (Cache.Persist.list_files ~dir:(Cache.dir ()) ()))
        (Cache.Persist.disk_bytes ~dir:(Cache.dir ()) ())
    in
    let doc =
      "Compile a workload with the disk tier enabled so later runs (and \
       other processes) start from a warm synthesis cache."
    in
    Cmd.v (Cmd.info "warm" ~doc)
      Term.(const run $ source_arg $ isa_arg $ topology_arg $ baseline_arg $ pipeline_arg $ exact_arg)
  in
  let audit_sub =
    let run json =
      let findings = Cache_audit.run ~dir:(Cache.dir ()) () in
      if json then print_endline (Finding.list_to_json findings)
      else begin
        Printf.printf "dir:       %s\n" (Cache.dir ());
        print_findings findings
      end;
      if Finding.has_errors findings then exit 4
    in
    let doc =
      "Audit the persistent synthesis cache: parse every entry, verify \
       checksums, re-derive content addresses from stored fingerprints and \
       range-check stored gates.  Exits 4 on error findings."
    in
    Cmd.v (Cmd.info "audit" ~doc) Term.(const run $ json_arg)
  in
  let doc =
    "Manage the content-addressed synthesis cache (persistent tier under \
     \\$PHOENIX_CACHE_DIR)."
  in
  Cmd.group (Cmd.info "cache" ~doc) [ stats_sub; clear_sub; warm_sub; audit_sub ]

(* --- chaos: the fault-injection soak ------------------------------------- *)

(* Every seeded run must land in one of the first three classes; a
   Violation — silent divergence from the clean baseline, a surviving
   verification error, a non-conforming degradation, or a raw exception
   escaping the pass manager — fails the soak. *)
type chaos_class = Identical | Degraded | Failed_closed | Violation

let chaos_class_name = function
  | Identical -> "identical"
  | Degraded -> "degraded"
  | Failed_closed -> "failed-closed"
  | Violation -> "violation"

let chaos_cmd =
  let runs_arg =
    let doc = "Seeded chaos runs per pipeline." in
    Arg.(value & opt int 50 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Base seed; the $(i,r)-th run injects faults under seed + r." in
    Arg.(value & opt int 2025 & info [ "seed" ] ~doc)
  in
  let workload_arg =
    let doc = "Workload to soak (Hamiltonian file or builtin)." in
    Arg.(value & opt string "heisenberg:6" & info [ "workload" ] ~doc)
  in
  let pipelines_arg =
    let doc = "Comma-separated pipeline names, or $(b,all)." in
    Arg.(value & opt string "all" & info [ "pipelines" ] ~doc)
  in
  let plan_arg =
    let doc =
      "Fault plan in PHOENIX_CHAOS syntax (any seed field is overridden \
       per run): per-site firing probabilities for $(b,timeout), \
       $(b,worker), $(b,cache-flip), $(b,cache-truncate) and $(b,alloc)."
    in
    Arg.(
      value
      & opt string
          "timeout=0.02,worker=0.05,cache-flip=0.15,cache-truncate=0.05,alloc=0.02"
      & info [ "plan" ] ~doc)
  in
  let json_arg =
    let doc =
      "Write the per-run soak records to FILE as JSON; $(b,-) for stdout."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-run budget backstop in seconds: a wedged run must degrade or \
       fail closed, never hang."
    in
    Arg.(value & opt float 10.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let run runs seed workload pipelines plan_str json_out timeout =
    let plan =
      match Chaos.parse plan_str with
      | Ok p -> p
      | Error msg ->
        Printf.eprintf "chaos: %s\n" msg;
        exit 2
    in
    if runs < 1 then begin
      Printf.eprintf "chaos: --runs must be at least 1\n";
      exit 2
    end;
    if not (Float.is_finite timeout) || timeout <= 0.0 then begin
      Printf.eprintf "chaos: --timeout must be a positive number of seconds\n";
      exit 2
    end;
    let entries =
      if pipelines = "all" then Pipelines.all
      else List.map find_pipeline (String.split_on_char ',' pipelines)
    in
    let h = load workload in
    let n = Hamiltonian.num_qubits h in
    let two_local =
      not
        (List.exists
           (fun (p, _) -> Phoenix_pauli.Pauli_string.weight p > 2)
           (Hamiltonian.trotter_gadgets h))
    in
    (* Isolated persistent-cache directory: the soak corrupts staged cache
       entries on purpose and must never touch a user's cache.  Entries
       survive between runs so later runs exercise the corrupt-read path. *)
    let cache_dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "phoenix-chaos-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir cache_dir 0o700
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Unix.putenv "PHOENIX_CACHE_DIR" cache_dir;
    let options_for entry budget =
      {
        Compiler.default_options with
        verify = true;
        cache = Cache.Disk;
        budget;
        target =
          (if entry.Pipelines.requires_topology then
             Compiler.Hardware (Topology.line (max n 2))
           else Compiler.Logical);
      }
    in
    let compile_once entry budget =
      Cache.reset_health ();
      Cache.clear_memory ();
      Pipelines.compile ~options:(options_for entry budget) ~protect:true entry
        h
    in
    let results = ref [] in
    Fun.protect
      ~finally:(fun () -> Chaos.set_plan None)
      (fun () ->
        List.iter
          (fun entry ->
            if entry.Pipelines.two_local_only && not two_local then
              Printf.printf "%-12s skipped (workload is not 2-local)\n"
                entry.Pipelines.name
            else begin
              Chaos.set_plan None;
              let baseline = compile_once entry Budget.none in
              if Diag.has_errors baseline.Compiler.diagnostics then begin
                Printf.eprintf
                  "chaos: the clean %s baseline fails verification; fix that \
                   before soaking\n"
                  entry.Pipelines.name;
                exit 1
              end;
              let baseline_gates = Circuit.gates baseline.Compiler.circuit in
              for r = 0 to runs - 1 do
                let run_seed = seed + r in
                Chaos.set_plan (Some { plan with Chaos.seed = run_seed });
                let cls, detail =
                  match compile_once entry (Budget.of_timeout_s timeout) with
                  | report ->
                    if Diag.has_errors report.Compiler.diagnostics then
                      ( Violation,
                        "verification errors survived: "
                        ^ Diag.summary report.Compiler.diagnostics )
                    else if report.Compiler.degradations <> [] then begin
                      let lint = Resilience_lint.conformance report in
                      if Finding.has_errors lint then
                        (Violation, Finding.summary lint)
                      else
                        ( Degraded,
                          Resilience.aggregate_to_string
                            report.Compiler.degradations )
                    end
                    else if
                      Circuit.gates report.Compiler.circuit = baseline_gates
                    then (Identical, "")
                    else
                      ( Violation,
                        "silent divergence from the clean baseline circuit" )
                  | exception Pass.Interrupted { pass; reason } ->
                    ( Failed_closed,
                      Printf.sprintf "%s: %s" pass
                        (Budget.reason_to_string reason) )
                  | exception Pass.Failed { pass; error } ->
                    (Failed_closed, Printf.sprintf "%s: %s" pass error)
                  | exception e ->
                    (Violation, "uncaught exception: " ^ Printexc.to_string e)
                in
                Chaos.set_plan None;
                results := (entry.Pipelines.name, run_seed, cls, detail)
                           :: !results
              done
            end)
          entries);
    let results = List.rev !results in
    let count c = List.length (List.filter (fun (_, _, k, _) -> k = c) results) in
    let identical = count Identical and degraded = count Degraded in
    let failed = count Failed_closed and violations = count Violation in
    Printf.printf "plan:      %s (base seed %d)\n"
      (Chaos.plan_to_string { plan with Chaos.seed = seed })
      seed;
    Printf.printf "workload:  %s (%d qubits)\n" workload n;
    Printf.printf "runs:      %d per pipeline, %d total\n" runs
      (List.length results);
    Printf.printf "identical: %d\n" identical;
    Printf.printf "degraded:  %d\n" degraded;
    Printf.printf "failed-closed: %d\n" failed;
    Printf.printf "violations: %d\n" violations;
    List.iter
      (fun (pipe, s, cls, detail) ->
        if cls = Violation then
          Printf.printf "  VIOLATION %s seed=%d: %s\n" pipe s detail)
      results;
    (match json_out with
    | None -> ()
    | Some path ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf
        (Printf.sprintf
           "{ \"schema\": \"phoenix-chaos-v1\", \"workload\": %S, \"plan\": \
            %S, \"base_seed\": %d, \"runs_per_pipeline\": %d, \"results\": ["
           workload plan_str seed runs);
      List.iteri
        (fun i (pipe, s, cls, detail) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf
               "{ \"pipeline\": %S, \"seed\": %d, \"class\": %S, \"detail\": \
                %S }"
               pipe s (chaos_class_name cls) detail))
        results;
      Buffer.add_string buf
        (Printf.sprintf
           " ], \"identical\": %d, \"degraded\": %d, \"failed_closed\": %d, \
            \"violations\": %d }"
           identical degraded failed violations);
      if path = "-" then print_endline (Buffer.contents buf)
      else begin
        let oc = open_out path in
        output_string oc (Buffer.contents buf);
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path
      end);
    if violations > 0 then exit 1
  in
  let doc =
    "Soak the compiler under seeded fault injection: N runs per pipeline, \
     each under a per-run deadline with injected pass timeouts, worker \
     faults, cache corruption and allocation pressure.  Every run must \
     complete bit-identically to a clean baseline, degrade conformantly \
     along the registered ladders, or fail closed with a structured \
     diagnostic; anything else is a violation (exit 1)."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ runs_arg $ seed_arg $ workload_arg $ pipelines_arg $ plan_arg $ json_arg $ timeout_arg)

(* --- serve: the concurrent compilation daemon --------------------------- *)

let serve_cmd =
  let module Serve = Phoenix_serve.Serve in
  let module Json = Phoenix_serve.Json in
  let run socket port host workers max_queue timeout max_request_kb self_test
      connect =
    if workers < 1 then begin
      Printf.eprintf "--workers must be >= 1\n";
      exit 2
    end;
    if max_queue < 1 then begin
      Printf.eprintf "--max-queue must be >= 1\n";
      exit 2
    end;
    if max_request_kb < 1 then begin
      Printf.eprintf "--max-request-kb must be >= 1\n";
      exit 2
    end;
    (match timeout with
    | Some s when (not (Float.is_finite s)) || s < 0.0 ->
      Printf.eprintf "--timeout must be a non-negative number of seconds\n";
      exit 2
    | _ -> ());
    match connect with
    | Some spec -> begin
      (* client mode: pump NDJSON requests from stdin, responses to
         stdout (completion order; match on "id") *)
      match Serve.addr_of_string spec with
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
      | Ok addr -> (
        match Serve.Client.connect addr with
        | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "cannot connect to %s: %s\n"
            (Serve.addr_to_string addr) (Unix.error_message e);
          exit 2
        | conn ->
          let pump =
            Thread.create
              (fun () ->
                let rec loop () =
                  match Serve.Client.recv conn with
                  | Some resp ->
                    print_endline (Json.to_string resp);
                    loop ()
                  | None -> ()
                in
                loop ())
              ()
          in
          (try
             while true do
               Serve.Client.send_line conn (input_line stdin)
             done
           with End_of_file -> ());
          Serve.Client.shutdown_send conn;
          Thread.join pump;
          Serve.Client.close conn)
    end
    | None ->
      if self_test then begin
        if Serve.self_test ~workers () then
          print_endline "phoenix serve: self-test ok"
        else begin
          Printf.eprintf "phoenix serve: self-test FAILED\n";
          exit 1
        end
      end
      else begin
        let addr =
          match (socket, port) with
          | Some _, Some _ ->
            Printf.eprintf "--socket and --port are mutually exclusive\n";
            exit 2
          | Some path, None -> Serve.Unix_socket path
          | None, Some p when p >= 0 && p <= 65535 -> Serve.Tcp (host, p)
          | None, Some p ->
            Printf.eprintf "port %d out of range (0-65535)\n" p;
            exit 2
          | None, None ->
            Printf.eprintf
              "phoenix serve needs --socket PATH or --port N (or \
               --self-test/--connect)\n";
            exit 2
        in
        let config =
          {
            (Serve.default_config addr) with
            Serve.workers;
            max_queue;
            default_timeout_s = timeout;
            max_request_bytes = max_request_kb * 1024;
          }
        in
        match Serve.run config with
        | () -> ()
        | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "cannot serve on %s: %s\n"
            (Serve.addr_to_string addr) (Unix.error_message e);
          exit 2
        | exception Failure msg ->
          (* e.g. a hostname inet_addr_of_string cannot parse *)
          Printf.eprintf "cannot serve on %s: %s\n"
            (Serve.addr_to_string addr) msg;
          exit 2
      end
  in
  let socket_arg =
    let doc = "Listen on a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let port_arg =
    let doc = "Listen on TCP port $(docv) (0 binds an ephemeral port)." in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let host_arg =
    let doc = "Bind address for $(b,--port)." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains compiling jobs in parallel." in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Job-queue capacity; compile requests beyond it are refused with \
       status 6 (overloaded) instead of buffering without bound."
    in
    Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Default per-job compile budget in seconds for jobs that carry no \
       $(i,timeout)/$(i,budget_checks) of their own; expiry degrades along \
       the resilience ladders or answers status 5 (deadline)."
    in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_request_arg =
    let doc =
      "Longest accepted request line, in KiB; longer lines get a \
       structured status-2 response and the connection is closed."
    in
    Arg.(value & opt int 8192 & info [ "max-request-kb" ] ~docv:"KIB" ~doc)
  in
  let self_test_arg =
    let doc =
      "One-shot smoke mode: boot on an ephemeral socket, exercise \
       ping/compile/template/stats/malformed round trips through a real \
       connection, drain, exit 0 on success (CI's liveness check)."
    in
    Arg.(value & flag & info [ "self-test" ] ~doc)
  in
  let connect_arg =
    let doc =
      "Client mode: connect to a running daemon at $(docv) \
       (unix:PATH or tcp:HOST:PORT), send request lines from stdin, print \
       response lines (completion order) to stdout."
    in
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let doc =
    "Run the concurrent compilation daemon: newline-delimited JSON compile \
     jobs in (builtin workloads, inline Hamiltonians, or OpenQASM), circuit \
     + report JSON out, over a Unix or TCP socket.  Jobs compile in \
     parallel on a pool of worker domains sharing one synthesis cache; \
     responses arrive in completion order and carry the CLI's exit-code \
     contract as a per-response status.  SIGTERM drains: every accepted \
     job is answered before exit."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ workers_arg
      $ max_queue_arg $ timeout_arg $ max_request_arg $ self_test_arg
      $ connect_arg)

let () =
  Chaos.install_from_env ();
  let doc = "PHOENIX: Pauli-based high-level optimization engine (DAC 2025 reproduction)." in
  let info = Cmd.info "phoenix" ~version:"1.0.0" ~doc in
  let status =
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [ compile_cmd; info_cmd; bench_cmd; simulate_cmd; analyze_cmd; certify_cmd; passes_cmd; cache_cmd; chaos_cmd; serve_cmd ])
    with
    | Pass.Interrupted { pass; reason } ->
      (* a budget expired in a pass with no fallback rung: fail closed
         with the documented exit code (5 deadline, 1 cancellation) *)
      Printf.eprintf "phoenix: %s\n"
        (Diag.to_string
           (Diag.make ~pass Diag.Error
              (match reason with
              | Budget.Deadline -> "deadline exceeded with no fallback available"
              | Budget.Cancelled -> "job cancelled")));
      (match reason with
      | Budget.Deadline -> Resilience.exit_deadline
      | Budget.Cancelled -> 1)
    | Pass.Failed { pass; error } ->
      Printf.eprintf "phoenix: %s\n"
        (Diag.to_string
           (Diag.make ~pass Diag.Error ("pass failed closed: " ^ error)));
      1
  in
  exit status
