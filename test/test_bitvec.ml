module Bitvec = Phoenix_util.Bitvec

let test_create_and_get () =
  let v = Bitvec.create 100 in
  Alcotest.(check int) "length" 100 (Bitvec.length v);
  Alcotest.(check bool) "zero" true (Bitvec.is_zero v);
  for i = 0 to 99 do
    Alcotest.(check bool) "bit clear" false (Bitvec.get v i)
  done

let test_set_get_roundtrip () =
  let v = Bitvec.create 130 in
  (* crosses word boundaries at 62 and 124 *)
  List.iter (fun i -> Bitvec.set v i true) [ 0; 61; 62; 63; 123; 124; 129 ];
  List.iter
    (fun i -> Alcotest.(check bool) (Printf.sprintf "bit %d" i) true (Bitvec.get v i))
    [ 0; 61; 62; 63; 123; 124; 129 ];
  Alcotest.(check int) "popcount" 7 (Bitvec.popcount v);
  Bitvec.set v 62 false;
  Alcotest.(check bool) "cleared" false (Bitvec.get v 62);
  Alcotest.(check int) "popcount after clear" 6 (Bitvec.popcount v)

let test_flip () =
  let v = Bitvec.create 10 in
  Bitvec.flip v 3;
  Alcotest.(check bool) "flipped on" true (Bitvec.get v 3);
  Bitvec.flip v 3;
  Alcotest.(check bool) "flipped off" false (Bitvec.get v 3)

let test_out_of_range () =
  let v = Bitvec.create 5 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v (-1)));
  Alcotest.check_raises "get 5" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v 5));
  Alcotest.check_raises "negative length"
    (Invalid_argument "Bitvec.create: negative length") (fun () ->
      ignore (Bitvec.create (-1)))

let test_string_roundtrip () =
  let s = "0110010111010001" in
  Alcotest.(check string) "roundtrip" s Bitvec.(to_string (of_string s))

let test_logical_ops () =
  let a = Bitvec.of_string "1100" and b = Bitvec.of_string "1010" in
  Alcotest.(check string) "xor" "0110" (Bitvec.to_string (Bitvec.logxor a b));
  Alcotest.(check string) "or" "1110" (Bitvec.to_string (Bitvec.logor a b));
  Alcotest.(check string) "and" "1000" (Bitvec.to_string (Bitvec.logand a b));
  Alcotest.(check int) "and_popcount" 1 (Bitvec.and_popcount a b);
  Alcotest.(check int) "or_popcount" 3 (Bitvec.or_popcount a b)

let test_length_mismatch () =
  let a = Bitvec.create 4 and b = Bitvec.create 5 in
  Alcotest.check_raises "xor mismatch" (Invalid_argument "Bitvec: length mismatch")
    (fun () -> ignore (Bitvec.logxor a b))

let test_indices () =
  let v = Bitvec.of_indices 70 [ 3; 62; 69 ] in
  Alcotest.(check (list int)) "indices" [ 3; 62; 69 ] (Bitvec.indices v);
  Alcotest.(check (option int)) "first_set" (Some 3) (Bitvec.first_set v);
  Alcotest.(check (option int)) "first_set empty" None
    (Bitvec.first_set (Bitvec.create 70))

let test_copy_independent () =
  let a = Bitvec.of_string "1010" in
  let b = Bitvec.copy a in
  Bitvec.flip b 0;
  Alcotest.(check bool) "original unchanged" true (Bitvec.get a 0);
  Alcotest.(check bool) "copy changed" false (Bitvec.get b 0)

let test_blit () =
  let a = Bitvec.of_string "1010110" and b = Bitvec.create 7 in
  Bitvec.blit ~src:a ~dst:b;
  Alcotest.(check string) "blit copies" "1010110" (Bitvec.to_string b);
  Bitvec.flip b 0;
  Alcotest.(check bool) "src unaliased" true (Bitvec.get a 0);
  Alcotest.check_raises "blit mismatch"
    (Invalid_argument "Bitvec.blit: length mismatch") (fun () ->
      Bitvec.blit ~src:a ~dst:(Bitvec.create 8))

let test_word_access () =
  let v = Bitvec.of_indices 130 [ 0; 61; 62; 129 ] in
  Alcotest.(check int) "num_words" 3 (Bitvec.num_words v);
  Alcotest.(check int) "word 0" ((1 lsl 61) lor 1) (Bitvec.word v 0);
  Alcotest.(check int) "word 1" 1 (Bitvec.word v 1);
  Alcotest.(check int) "bits_per_word" 62 Bitvec.bits_per_word

let test_word_kernels () =
  (* SWAR popcount and ctz against the naive per-bit loops, over words
     exercising every bit position of the 62-bit payload. *)
  let naive_popcount w =
    let c = ref 0 in
    for i = 0 to 61 do
      if (w lsr i) land 1 = 1 then incr c
    done;
    !c
  in
  let words =
    [ 0; 1; 2; 3; 0x2AAA_AAAA_AAAA_AAAA; (1 lsl 62) - 1 ]
    @ List.init 62 (fun i -> 1 lsl i)
    @ List.init 61 (fun i -> (1 lsl 62) - 1 - (1 lsl i))
  in
  List.iter
    (fun w ->
      Alcotest.(check int)
        (Printf.sprintf "popcount_word %x" w)
        (naive_popcount w) (Bitvec.popcount_word w);
      if w <> 0 then
        let rec lowest i = if (w lsr i) land 1 = 1 then i else lowest (i + 1) in
        Alcotest.(check int)
          (Printf.sprintf "ctz_word %x" w)
          (lowest 0) (Bitvec.ctz_word w))
    words

let random_vec_gen n =
  QCheck2.Gen.map
    (fun bits ->
      let v = Bitvec.create n in
      List.iteri (fun i b -> Bitvec.set v i b) bits;
      v)
    (QCheck2.Gen.list_size (QCheck2.Gen.return n) QCheck2.Gen.bool)

let prop_get_unsafe_matches_get =
  Helpers.qtest "get_unsafe = get" (random_vec_gen 150) (fun v ->
      let ok = ref true in
      for i = 0 to 149 do
        if Bitvec.get_unsafe v i <> Bitvec.get v i then ok := false
      done;
      !ok)

let prop_get2_unsafe_matches_get =
  Helpers.qtest "get2_unsafe packs get pairs"
    (QCheck2.Gen.triple (random_vec_gen 150)
       (QCheck2.Gen.int_range 0 149)
       (QCheck2.Gen.int_range 0 149))
    (fun (v, a, b) ->
      let expect =
        (if Bitvec.get v a then 1 else 0) lor (if Bitvec.get v b then 2 else 0)
      in
      Bitvec.get2_unsafe v a b = expect)

let prop_iter_set_matches_reference =
  (* The ctz-driven iter_set must visit exactly the set bits, ascending,
     like the naive per-bit scan it replaced. *)
  Helpers.qtest "iter_set = per-bit scan" (random_vec_gen 190) (fun v ->
      let fast = ref [] in
      Bitvec.iter_set (fun i -> fast := i :: !fast) v;
      let slow = ref [] in
      for i = 189 downto 0 do
        if Bitvec.get v i then slow := i :: !slow
      done;
      List.rev !fast = !slow)

let prop_xor_popcount =
  Helpers.qtest "xor of self is zero"
    (QCheck2.Gen.list_size (QCheck2.Gen.return 80) QCheck2.Gen.bool)
    (fun bits ->
      let v = Bitvec.create 80 in
      List.iteri (fun i b -> Bitvec.set v i b) bits;
      Bitvec.is_zero (Bitvec.logxor v v))

let prop_popcount_matches_indices =
  Helpers.qtest "popcount = |indices|"
    (QCheck2.Gen.list_size (QCheck2.Gen.return 100) QCheck2.Gen.bool)
    (fun bits ->
      let v = Bitvec.create 100 in
      List.iteri (fun i b -> Bitvec.set v i b) bits;
      Bitvec.popcount v = List.length (Bitvec.indices v))

let prop_fold_ascending =
  Helpers.qtest "fold_set visits ascending"
    (QCheck2.Gen.list_size (QCheck2.Gen.return 90) QCheck2.Gen.bool)
    (fun bits ->
      let v = Bitvec.create 90 in
      List.iteri (fun i b -> Bitvec.set v i b) bits;
      let idx = Bitvec.indices v in
      List.sort compare idx = idx)

let () =
  Alcotest.run "bitvec"
    [
      ( "unit",
        [
          Alcotest.test_case "create/get" `Quick test_create_and_get;
          Alcotest.test_case "set/get across words" `Quick test_set_get_roundtrip;
          Alcotest.test_case "flip" `Quick test_flip;
          Alcotest.test_case "bounds" `Quick test_out_of_range;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "logical ops" `Quick test_logical_ops;
          Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
          Alcotest.test_case "indices" `Quick test_indices;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
          Alcotest.test_case "blit" `Quick test_blit;
          Alcotest.test_case "word access" `Quick test_word_access;
          Alcotest.test_case "popcount/ctz kernels" `Quick test_word_kernels;
        ] );
      ( "props",
        [
          prop_xor_popcount;
          prop_popcount_matches_indices;
          prop_fold_ascending;
          prop_get_unsafe_matches_get;
          prop_get2_unsafe_matches_get;
          prop_iter_set_matches_reference;
        ] );
    ]
