(* The resilience layer's contract: deadlines and cancellation are
   cooperative but prompt, degradation follows the registered ladders
   and is never silent, cancellation never corrupts persistent state,
   and every chaos-injected fault either leaves the output bit-identical
   or fails closed. *)

module Budget = Phoenix_util.Budget
module Clock = Phoenix_util.Clock
module Chaos = Phoenix_util.Chaos
module Parallel = Phoenix_util.Parallel
module Resilience = Phoenix.Resilience
module Pass = Phoenix.Pass
module Compiler = Phoenix.Compiler
module Cache = Phoenix_cache.Cache
module Cache_audit = Phoenix_analysis.Cache_audit
module Resilience_lint = Phoenix_analysis.Resilience_lint
module Finding = Phoenix_analysis.Finding
module Circuit = Phoenix_circuit.Circuit
module Topology = Phoenix_topology.Topology
module Diag = Phoenix_verify.Diag
module Pauli_string = Phoenix_pauli.Pauli_string

(* Every disk-tier test in this binary works under a private directory. *)
let cache_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "phoenix-test-resilience-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Unix.putenv "PHOENIX_CACHE_DIR" d;
  d

let blocks =
  List.map
    (List.map (fun (s, a) -> Pauli_string.of_string s, a))
    [
      [ "XXIIII", 0.3; "YYIIII", 0.4; "ZZIIII", 0.5 ];
      [ "IIXYII", 0.2; "IIYXII", 0.7 ];
      [ "IIIIZZ", 0.1; "IIIIXX", 0.6 ];
      [ "XIIIIX", 0.8; "YIIIIY", 0.9 ];
      [ "IZZIII", 0.15; "IXXIII", 0.25 ];
    ]

let compile_with ?(verify = true) ?(cache = Cache.Off) budget =
  let options =
    { Compiler.default_options with verify; cache; budget }
  in
  Compiler.compile_blocks ~options 6 blocks

(* The undisturbed reference compile; cache off so it never depends on
   what previous tests left behind. *)
let reference = lazy (compile_with Budget.none)

(* --- clock ------------------------------------------------------------- *)

let test_monotonic_sane () =
  let m = Clock.monotonic_s () in
  let w = Clock.wall_s () in
  (* regression: the packed-bits encoding of an epoch-scale reading must
     not overflow the OCaml int (which froze the clock at 0.0) *)
  Alcotest.(check bool) "tracks the wall clock" true (Float.abs (m -. w) < 10.0)

let test_monotonic_nondecreasing () =
  let prev = ref (Clock.monotonic_s ()) in
  for i = 1 to 1000 do
    if i mod 250 = 0 then Unix.sleepf 0.002;
    let now = Clock.monotonic_s () in
    if now < !prev then Alcotest.fail "monotonic clock went backwards";
    prev := now
  done;
  let t0 = Clock.monotonic_s () in
  Unix.sleepf 0.01;
  Alcotest.(check bool) "advances" true (Clock.monotonic_s () > t0)

(* --- budget ------------------------------------------------------------ *)

let test_budget_none_never_fires () =
  for _ = 1 to 1000 do
    Budget.check Budget.none;
    Budget.checkpoint ()
  done;
  Alcotest.(check bool) "is_none" true (Budget.is_none Budget.none)

let test_budget_deadline_fires () =
  let b = Budget.of_timeout_s 0.0 in
  Unix.sleepf 0.01;
  Alcotest.check_raises "expired deadline"
    (Budget.Interrupted Budget.Deadline)
    (fun () -> Budget.check b);
  Alcotest.(check bool) "exhausted probe" true
    (Budget.exhausted b = Some Budget.Deadline);
  Alcotest.(check (float 1e-9)) "no time left" 0.0 (Budget.remaining_s b)

let test_budget_invalid_timeouts () =
  List.iter
    (fun s ->
      match Budget.of_timeout_s s with
      | _ -> Alcotest.fail "negative/non-finite timeout accepted"
      | exception Invalid_argument _ -> ())
    [ -1.0; Float.nan; Float.infinity ]

let test_budget_after_checks () =
  let b = Budget.after_checks 3 in
  Budget.check b;
  Budget.check b;
  Alcotest.check_raises "fires at the third check"
    (Budget.Interrupted Budget.Deadline)
    (fun () -> Budget.check b);
  Alcotest.check_raises "and every check after it"
    (Budget.Interrupted Budget.Deadline)
    (fun () -> Budget.check b)

let test_budget_cancel () =
  let b = Budget.cancellable () in
  Budget.check b;
  Budget.cancel b;
  Alcotest.check_raises "cancelled" (Budget.Interrupted Budget.Cancelled)
    (fun () -> Budget.check b);
  Alcotest.check_raises "the shared none budget is not cancellable"
    (Invalid_argument "Budget.cancel: the shared none budget") (fun () ->
      Budget.cancel Budget.none)

let test_ambient_stack () =
  let b = Budget.after_checks 1 in
  Alcotest.(check int) "empty before" 0 (List.length (Budget.ambient_budgets ()));
  (try
     Budget.with_ambient b (fun () ->
         Alcotest.(check bool)
           "installed" true
           (List.memq b (Budget.ambient_budgets ()));
         Budget.checkpoint ();
         Alcotest.fail "ambient checkpoint did not fire")
   with Budget.Interrupted Budget.Deadline -> ());
  Alcotest.(check int) "popped on exception" 0
    (List.length (Budget.ambient_budgets ()))

(* The ambient stack is domain-local: a budget installed by one job must
   be invisible to a job on another domain (the serve daemon runs
   independent jobs concurrently), while [Parallel.map] helper domains
   explicitly inherit their caller's stack. *)
let test_ambient_domain_isolation () =
  let b = Budget.after_checks 1 in
  Budget.with_ambient b (fun () ->
      let other =
        Domain.spawn (fun () ->
            (* No budget here: the checkpoint must not fire. *)
            Budget.checkpoint ();
            List.length (Budget.ambient_budgets ()))
      in
      Alcotest.(check int) "other domain sees an empty stack" 0
        (Domain.join other);
      Alcotest.(check bool) "this domain still holds the budget" true
        (List.memq b (Budget.ambient_budgets ())))

let test_ambient_inherited_by_pool () =
  let b = Budget.after_checks 1 in
  Budget.with_ambient b (fun () ->
      (* Force real helper domains; every worker checkpoint must see the
         caller's budget and fire. *)
      match
        Parallel.map ~domains:4
          (fun _ ->
            Budget.checkpoint ();
            0)
          (List.init 16 Fun.id)
      with
      | _ -> Alcotest.fail "pool workers did not inherit the budget"
      | exception Budget.Interrupted Budget.Deadline -> ())

(* --- parallel hardening ------------------------------------------------ *)

let test_transient_retried () =
  let attempts = Array.init 10 (fun _ -> Atomic.make 0) in
  let f i =
    let a = Atomic.fetch_and_add attempts.(i) 1 in
    if i = 3 && a < Parallel.default_retries then
      raise (Parallel.Transient "flaky")
    else i * 2
  in
  Alcotest.(check (list int))
    "retried in place"
    (List.init 10 (fun i -> i * 2))
    (Parallel.map ~domains:4 f (List.init 10 Fun.id));
  Alcotest.(check int)
    "used the retry budget"
    (Parallel.default_retries + 1)
    (Atomic.get attempts.(3))

let test_transient_exhausted () =
  let f i = if i = 5 then raise (Parallel.Transient "always") else i in
  Alcotest.check_raises "re-raised once the budget is spent"
    (Parallel.Transient "always") (fun () ->
      ignore (Parallel.map ~domains:4 f (List.init 20 Fun.id)))

let test_pool_reusable_after_failure () =
  (try ignore (Parallel.map ~domains:4 (fun _ -> failwith "boom") [ 1; 2; 3 ])
   with Failure _ -> ());
  Alcotest.(check (list int))
    "next map is clean"
    (List.init 50 succ)
    (Parallel.map ~domains:4 succ (List.init 50 Fun.id))

let test_map_cancellation () =
  let b = Budget.cancellable () in
  Budget.cancel b;
  Budget.with_ambient b (fun () ->
      Alcotest.check_raises "workers observe the ambient budget"
        (Budget.Interrupted Budget.Cancelled) (fun () ->
          ignore
            (Parallel.map ~domains:4
               (fun i ->
                 Budget.checkpoint ();
                 i)
               (List.init 100 Fun.id))))

(* --- the degradation ladder ------------------------------------------- *)

let test_registry_is_clean () =
  let findings = Resilience_lint.registry_audit () in
  Alcotest.(check bool) "no registry errors" false (Finding.has_errors findings)

let test_deadline_degrades_and_verifies () =
  let r = compile_with (Budget.after_checks 1) in
  let ref_r = Lazy.force reference in
  Alcotest.(check bool)
    "degradations recorded" true
    (r.Compiler.degradations <> []);
  Alcotest.(check bool)
    "warned about it" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.severity = Diag.Warning)
       r.Compiler.diagnostics);
  Alcotest.(check bool)
    "still verifies" false
    (Diag.has_errors r.Compiler.diagnostics);
  Alcotest.(check bool)
    "conformance lint clean" false
    (Finding.has_errors (Resilience_lint.conformance r));
  (* the naive rungs cost more gates, never fewer *)
  Alcotest.(check bool)
    "fallback is the cheaper strategy, not a better one" true
    (Circuit.length r.Compiler.circuit
    >= Circuit.length ref_r.Compiler.circuit);
  (* and the trace carries the aggregated steps *)
  let json =
    Pass.trace_to_json ~degradations:r.Compiler.degradations r.Compiler.trace
  in
  let contains s =
    let n = String.length json and m = String.length s in
    let rec go i = i + m <= n && (String.sub json i m = s || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "trace records the ladder steps" true
    (contains "\"degradations\"" && contains "naive-ladder")

let test_degraded_results_never_cached () =
  Cache.clear_memory ();
  Cache.reset_health ();
  let degraded = compile_with ~cache:Cache.Mem (Budget.after_checks 1) in
  Alcotest.(check bool) "run degraded" true (degraded.Compiler.degradations <> []);
  let warm = compile_with ~cache:Cache.Mem Budget.none in
  Alcotest.(check bool)
    "clean rerun matches the cold reference bit for bit" true
    (Circuit.equal warm.Compiler.circuit
       (Lazy.force reference).Compiler.circuit)

let test_unabsorbed_deadline_names_the_pass () =
  let options =
    {
      Compiler.default_options with
      target = Compiler.Hardware (Topology.line 6);
      budget = Budget.after_checks 1;
    }
  in
  match Compiler.compile_blocks ~options 6 blocks with
  | _ -> Alcotest.fail "routing has no fallback rung; expected Interrupted"
  | exception Pass.Interrupted { pass; reason = Budget.Deadline } ->
    Alcotest.(check string) "interrupted in the router" "route" pass
  | exception Pass.Interrupted { reason = Budget.Cancelled; _ } ->
    Alcotest.fail "reason must be Deadline"

let test_exit_code_documented () =
  Alcotest.(check int) "exit 5 is the deadline code" 5 Resilience.exit_deadline

(* --- chaos plans ------------------------------------------------------- *)

let test_chaos_parse_roundtrip () =
  match Chaos.parse "seed=42,timeout=0.001,worker=0.01,cache-flip=0.05" with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check int) "seed" 42 p.Chaos.seed;
    (match Chaos.parse (Chaos.plan_to_string p) with
    | Error e -> Alcotest.fail e
    | Ok p' -> Alcotest.(check bool) "round-trips" true (p = p'))

let test_chaos_parse_rejects () =
  List.iter
    (fun s ->
      match Chaos.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed plan %S" s)
      | Error _ -> ())
    [ ""; "bogus"; "seed=x"; "timeout=2.0"; "worker=-0.1"; "no-such-site=0.5" ]

let test_chaos_deterministic_replay () =
  let p =
    match Chaos.parse "seed=7,worker=0.3,timeout=0.1" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let record () =
    Chaos.set_plan (Some p);
    let fires =
      List.init 200 (fun _ -> (Chaos.fire Chaos.Worker, Chaos.fire Chaos.Timeout))
    in
    Chaos.set_plan None;
    fires
  in
  let a = record () and b = record () in
  Alcotest.(check bool) "same seed, same firing sequence" true (a = b);
  Alcotest.(check bool) "some fired" true (List.exists fst a);
  Alcotest.(check bool) "not all fired" true (not (List.for_all fst a));
  Alcotest.(check bool) "disabled never fires" false (Chaos.fire Chaos.Worker)

let test_chaos_env_malformed_runs_clean () =
  let prev = Sys.getenv_opt "PHOENIX_CHAOS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PHOENIX_CHAOS" (Option.value ~default:"" prev);
      Chaos.set_plan None)
    (fun () ->
      Unix.putenv "PHOENIX_CHAOS" "utterly=broken";
      Chaos.install_from_env ();
      Alcotest.(check bool) "malformed plan ignored" false (Chaos.enabled ()))

(* A miniature in-process soak: under injected timeouts and worker
   faults, every compile must come back bit-identical, conformantly
   degraded, or interrupted/failed with the pass named. *)
let test_chaos_soak_invariant () =
  let p =
    match Chaos.parse "worker=0.1,timeout=0.05" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let clean = Lazy.force reference in
  Fun.protect
    ~finally:(fun () -> Chaos.set_plan None)
    (fun () ->
      for seed = 1 to 25 do
        Chaos.set_plan (Some { p with Chaos.seed = seed });
        (match compile_with (Budget.of_timeout_s 10.0) with
        | r ->
          if Diag.has_errors r.Compiler.diagnostics then
            Alcotest.fail "verification errors under chaos"
          else if r.Compiler.degradations <> [] then begin
            if Finding.has_errors (Resilience_lint.conformance r) then
              Alcotest.fail "non-conforming degradation under chaos"
          end
          else if not (Circuit.equal r.Compiler.circuit clean.Compiler.circuit)
          then Alcotest.fail "silent divergence under chaos"
        | exception Pass.Interrupted _ -> ()
        | exception Pass.Failed _ -> ());
        Chaos.set_plan None
      done)

(* --- cache resilience -------------------------------------------------- *)

let test_cache_health_ladder () =
  Cache.reset_health ();
  Alcotest.(check string) "starts full" "full"
    (Cache.health_to_string (Cache.health ()));
  Cache.Testing.trip_disk_errors (Cache.Testing.disk_error_threshold - 1);
  Alcotest.(check string) "below threshold stays full" "full"
    (Cache.health_to_string (Cache.health ()));
  Cache.Testing.trip_disk_errors 1;
  Alcotest.(check string) "threshold parks the disk tier" "mem-only"
    (Cache.health_to_string (Cache.health ()));
  Cache.reset_health ();
  Alcotest.(check string) "re-armed" "full"
    (Cache.health_to_string (Cache.health ()))

let test_exdev_fallback_roundtrip () =
  ignore (Cache.Persist.clear ~dir:cache_dir ());
  Cache.clear_memory ();
  Cache.reset_health ();
  Fun.protect
    ~finally:(fun () -> Cache.Testing.set_force_exdev false)
    (fun () ->
      Cache.Testing.set_force_exdev true;
      let r = compile_with ~cache:Cache.Disk Budget.none in
      Alcotest.(check bool)
        "copy+fsync+rename persisted entries" true
        (Cache.Persist.list_files ~dir:cache_dir () <> []);
      Alcotest.(check bool)
        "no disk errors on the fallback path" true
        (r.Compiler.cache_stats.Cache.disk_errors = 0);
      Alcotest.(check bool)
        "entries audit clean" false
        (Finding.has_errors (Cache_audit.run ~dir:cache_dir ()));
      (* and a cold process reads them back bit-identically *)
      Cache.clear_memory ();
      let warm = compile_with ~cache:Cache.Disk Budget.none in
      Alcotest.(check bool)
        "disk round-trip is bit-identical" true
        (Circuit.equal warm.Compiler.circuit r.Compiler.circuit);
      Alcotest.(check bool)
        "replayed from disk" true
        (warm.Compiler.cache_stats.Cache.disk_hits > 0))

(* --- cancel safety (property) ------------------------------------------ *)

(* Cancelling at an arbitrary checkpoint must never corrupt the cache or
   produce partial output: the compile either completes untouched
   (cancellation landed after the last checkpoint) or raises the
   structured interrupt, and a clean re-run over the same cache is
   bit-identical to the undisturbed reference. *)
let cancel_safety =
  QCheck.Test.make ~count:20 ~name:"cancel at any checkpoint is safe"
    QCheck.(int_range 1 500)
    (fun k ->
      Cache.clear_memory ();
      Cache.reset_health ();
      let interrupted =
        match
          compile_with ~cache:Cache.Disk
            (Budget.after_checks ~reason:Budget.Cancelled k)
        with
        | r ->
          (* cancellation is never absorbed by a ladder *)
          r.Compiler.degradations = []
        | exception Pass.Interrupted { reason = Budget.Cancelled; _ } -> true
        | exception _ -> false
      in
      Cache.clear_memory ();
      Cache.reset_health ();
      let rerun = compile_with ~cache:Cache.Disk Budget.none in
      interrupted
      && Circuit.equal rerun.Compiler.circuit
           (Lazy.force reference).Compiler.circuit
      && not (Finding.has_errors (Cache_audit.run ~dir:cache_dir ())))

let () =
  Alcotest.run "resilience"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic tracks wall" `Quick test_monotonic_sane;
          Alcotest.test_case "monotonic non-decreasing" `Quick
            test_monotonic_nondecreasing;
        ] );
      ( "budget",
        [
          Alcotest.test_case "none never fires" `Quick
            test_budget_none_never_fires;
          Alcotest.test_case "deadline fires" `Quick test_budget_deadline_fires;
          Alcotest.test_case "invalid timeouts rejected" `Quick
            test_budget_invalid_timeouts;
          Alcotest.test_case "after_checks test hook" `Quick
            test_budget_after_checks;
          Alcotest.test_case "cancellation" `Quick test_budget_cancel;
          Alcotest.test_case "ambient stack" `Quick test_ambient_stack;
          Alcotest.test_case "ambient stack is domain-local" `Quick
            test_ambient_domain_isolation;
          Alcotest.test_case "pool workers inherit the caller's budget"
            `Quick test_ambient_inherited_by_pool;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "transient faults retried" `Quick
            test_transient_retried;
          Alcotest.test_case "transient budget exhausts" `Quick
            test_transient_exhausted;
          Alcotest.test_case "pool reusable after failure" `Quick
            test_pool_reusable_after_failure;
          Alcotest.test_case "workers honour cancellation" `Quick
            test_map_cancellation;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "registry audits clean" `Quick
            test_registry_is_clean;
          Alcotest.test_case "deadline degrades and verifies" `Quick
            test_deadline_degrades_and_verifies;
          Alcotest.test_case "degraded results never cached" `Quick
            test_degraded_results_never_cached;
          Alcotest.test_case "unabsorbed deadline names the pass" `Quick
            test_unabsorbed_deadline_names_the_pass;
          Alcotest.test_case "exit code documented" `Quick
            test_exit_code_documented;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "plan parse round-trip" `Quick
            test_chaos_parse_roundtrip;
          Alcotest.test_case "malformed plans rejected" `Quick
            test_chaos_parse_rejects;
          Alcotest.test_case "deterministic replay" `Quick
            test_chaos_deterministic_replay;
          Alcotest.test_case "malformed env runs clean" `Quick
            test_chaos_env_malformed_runs_clean;
          Alcotest.test_case "soak invariant (in-process)" `Quick
            test_chaos_soak_invariant;
        ] );
      ( "cache",
        [
          Alcotest.test_case "health ladder" `Quick test_cache_health_ladder;
          Alcotest.test_case "EXDEV fallback round-trip" `Quick
            test_exdev_fallback_roundtrip;
        ] );
      ( "cancel-safety",
        [ QCheck_alcotest.to_alcotest cancel_safety ] );
    ]
