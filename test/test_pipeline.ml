(* The pipeline registry: golden-output regressions pinning the PHOENIX
   pipeline bit-for-bit to the pre-refactor compiler on the paper's
   UCCSD and QAOA presets, baseline digests through the same registry,
   the telescoping invariant of per-pass traces (deterministic over
   every registered pipeline plus a qcheck property over random gadget
   programs), and the pass-boundary hooks. *)

module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Compiler = Phoenix.Compiler
module Pass = Phoenix.Pass
module Registry = Phoenix_pipeline.Registry
module Hooks = Phoenix_pipeline.Hooks
module Finding = Phoenix_analysis.Finding
module Diag = Phoenix_verify.Diag
module Topology = Phoenix_topology.Topology

let digest c =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" (List.map Gate.to_string (Circuit.gates c))))

let uccsd =
  lazy
    (let b = Phoenix_ham.Molecules.find "LiH_frz_JW" in
     Phoenix_ham.Uccsd.ansatz b.Phoenix_ham.Molecules.encoding
       b.Phoenix_ham.Molecules.spec)

let qaoa =
  lazy
    (Phoenix_ham.Qaoa.maxcut_cost
       (List.assoc "Reg3-16" (Phoenix_ham.Qaoa.benchmark_suite ())))

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "pipeline %S not registered" name

let opts ?(exact = false) ?(verify = false) ?(peephole = true) ?target ?isa ()
    =
  {
    Compiler.default_options with
    exact;
    verify;
    peephole;
    target = Option.value ~default:Compiler.Logical target;
    isa = Option.value ~default:Compiler.Cnot_isa isa;
  }

(* --- golden outputs: PHOENIX is bit-identical across the refactor ---- *)

let check_report name ~md5 ~two_q ~depth_2q ~one_q ~swaps ~logical_two_q
    (r : Compiler.report) =
  Alcotest.(check string) (name ^ " digest") md5 (digest r.Compiler.circuit);
  Alcotest.(check int) (name ^ " two_q") two_q r.Compiler.two_q_count;
  Alcotest.(check int) (name ^ " depth_2q") depth_2q r.Compiler.depth_2q;
  Alcotest.(check int) (name ^ " one_q") one_q r.Compiler.one_q_count;
  Alcotest.(check int) (name ^ " swaps") swaps r.Compiler.num_swaps;
  Alcotest.(check int)
    (name ^ " logical_two_q")
    logical_two_q r.Compiler.logical_two_q

let test_phoenix_golden_uccsd () =
  let h = Lazy.force uccsd in
  let phoenix = entry "phoenix" in
  let hh = Topology.ibm_manhattan () in
  let go options = Registry.compile ~options phoenix h in
  check_report "default" ~md5:"7d48fb3580566670e9c516844bd872e9" ~two_q:336
    ~depth_2q:318 ~one_q:932 ~swaps:0 ~logical_two_q:336
    (go (opts ()));
  check_report "exact" ~md5:"2653091b6f8d67a9652b7659c13a114e" ~two_q:366
    ~depth_2q:350 ~one_q:970 ~swaps:0 ~logical_two_q:366
    (go (opts ~exact:true ()));
  check_report "su4" ~md5:"a0d4a70295c4d7776227f594e5510949" ~two_q:339
    ~depth_2q:305 ~one_q:0 ~swaps:0 ~logical_two_q:339
    (go (opts ~isa:Compiler.Su4_isa ()));
  check_report "heavyhex" ~md5:"57a7a78f231e6e15db126a62da89880c" ~two_q:1159
    ~depth_2q:937 ~one_q:1060 ~swaps:283 ~logical_two_q:332
    (go (opts ~target:(Compiler.Hardware hh) ()));
  (* verification is pure observation: same bits as the default run *)
  check_report "verify" ~md5:"7d48fb3580566670e9c516844bd872e9" ~two_q:336
    ~depth_2q:318 ~one_q:932 ~swaps:0 ~logical_two_q:336
    (go (opts ~verify:true ()))

let test_phoenix_golden_qaoa () =
  let h = Lazy.force qaoa in
  let phoenix = entry "phoenix" in
  let hh = Topology.ibm_manhattan () in
  let go options = Registry.compile ~options phoenix h in
  check_report "default" ~md5:"af92c9b8ba1d6b29d8f558db7be67665" ~two_q:48
    ~depth_2q:22 ~one_q:24 ~swaps:0 ~logical_two_q:48
    (go (opts ()));
  check_report "exact" ~md5:"982c5d8dc8498f6d666ef2224fab3035" ~two_q:48
    ~depth_2q:14 ~one_q:24 ~swaps:0 ~logical_two_q:48
    (go (opts ~exact:true ()));
  check_report "heavyhex" ~md5:"8c595a2b87bb915b30abf42915a52533" ~two_q:115
    ~depth_2q:35 ~one_q:24 ~swaps:23 ~logical_two_q:48
    (go (opts ~target:(Compiler.Hardware hh) ()))

(* The baselines, now expressed as registry pipelines, still produce the
   exact circuits their standalone [compile] entry points did. *)
let test_baseline_golden () =
  let uccsd = Lazy.force uccsd and qaoa = Lazy.force qaoa in
  List.iter
    (fun (name, h, md5) ->
      let r = Registry.compile ~options:(opts ()) (entry name) h in
      Alcotest.(check string) name md5 (digest r.Compiler.circuit))
    [
      "naive", uccsd, "74a968258657dbd904795fe03d7ea396";
      "tket", uccsd, "0d1b45dfa30edc3f2baffcbe6230887c";
      "paulihedral", uccsd, "ae99864cbd0b832f4d12285710e8f667";
      "tetris", uccsd, "58257966247b7555aa65cee4b2f9675c";
      "naive", qaoa, "982c5d8dc8498f6d666ef2224fab3035";
      "tket", qaoa, "b840bd6a0326ade58f1ce8bca9b0137b";
      "paulihedral", qaoa, "c281a36cbab77760b6c2eea2041bb5a8";
      "tetris", qaoa, "c281a36cbab77760b6c2eea2041bb5a8";
    ];
  let r =
    Registry.compile ~options:(opts ~peephole:false ()) (entry "tket") uccsd
  in
  Alcotest.(check string) "tket nopeep" "c1baccc1f337536ba6ae9a4d8aea460c"
    (digest r.Compiler.circuit);
  let r =
    Registry.compile
      ~options:(opts ~target:(Compiler.Hardware (Topology.line 16)) ())
      (entry "2qan") qaoa
  in
  Alcotest.(check string) "2qan" "806cb3996ac06008e0c49e4f9f9de1af"
    (digest r.Compiler.circuit);
  Alcotest.(check int) "2qan swaps" 59 r.Compiler.num_swaps

(* --- the telescoping invariant of traces ----------------------------- *)

let metrics_list (m : Pass.metrics) =
  [ m.Pass.gates; m.Pass.one_q; m.Pass.two_q; m.Pass.depth_2q ]

let delta_sum trace =
  List.fold_left
    (fun acc e -> Pass.metrics_add acc (Pass.entry_delta e))
    Pass.metrics_zero trace

let telescopes (r : Compiler.report) =
  delta_sum r.Compiler.trace = Pass.metrics_of r.Compiler.circuit

let test_trace_telescopes_all_pipelines () =
  let uccsd = Lazy.force uccsd and qaoa = Lazy.force qaoa in
  let hh = Topology.ibm_manhattan () in
  List.iter
    (fun (name, h, options) ->
      let r = Registry.compile ~options (entry name) h in
      Alcotest.(check bool) (name ^ " trace nonempty") true (r.Compiler.trace <> []);
      Alcotest.(check (list int))
        (name ^ " deltas sum to final metrics")
        (metrics_list (Pass.metrics_of r.Compiler.circuit))
        (metrics_list (delta_sum r.Compiler.trace)))
    [
      "phoenix", uccsd, opts ();
      "phoenix", uccsd, opts ~target:(Compiler.Hardware hh) ();
      "phoenix", uccsd, opts ~isa:Compiler.Su4_isa ();
      "tket", uccsd, opts ();
      "paulihedral", uccsd, opts ~target:(Compiler.Hardware hh) ();
      "tetris", uccsd, opts ~isa:Compiler.Su4_isa ();
      "naive", uccsd, opts ();
      "2qan", qaoa, opts ~target:(Compiler.Hardware (Topology.line 16)) ();
    ]

let prop_trace_telescopes =
  Helpers.qtest ~count:25 "trace telescopes on random gadget programs"
    (Helpers.terms_gen 4 8) (fun terms ->
      List.for_all
        (fun name ->
          telescopes (Registry.compile_gadgets (entry name) 4 terms))
        [ "phoenix"; "tket"; "paulihedral"; "tetris"; "naive" ])

(* Pass timings in the report come straight from the trace. *)
let test_pass_times_match_trace () =
  let r =
    Registry.compile ~options:(opts ()) (entry "phoenix") (Lazy.force qaoa)
  in
  Alcotest.(check (list string))
    "pass_times names = trace order"
    (List.map (fun (e : Pass.trace_entry) -> e.Pass.pass) r.Compiler.trace)
    (List.map fst r.Compiler.pass_times)

(* --- registry surface ------------------------------------------------ *)

let test_registry_names () =
  Alcotest.(check (list string))
    "registry order"
    [ "phoenix"; "tket"; "paulihedral"; "tetris"; "2qan"; "naive" ]
    (Registry.names ())

let test_catalog_covers_all_pipelines () =
  let catalog = Registry.catalog () in
  Alcotest.(check bool) "nonempty" true (catalog <> []);
  List.iter
    (fun (c : Registry.catalog_entry) ->
      Alcotest.(check bool)
        (c.Registry.pass_name ^ " used somewhere")
        true
        (c.Registry.pipelines <> []))
    catalog;
  let used_by name =
    List.exists (fun c -> List.mem name c.Registry.pipelines) catalog
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in catalog") true (used_by name))
    (Registry.names ())

(* --- pass-boundary hooks --------------------------------------------- *)

let test_hooks_clean_on_real_pipelines () =
  let qaoa = Lazy.force qaoa in
  List.iter
    (fun name ->
      let findings = ref [] and diags = ref [] in
      let hooks = [ Hooks.lint findings; Hooks.translation_validate diags ] in
      let r = Registry.compile ~hooks ~options:(opts ()) (entry name) qaoa in
      ignore (r : Compiler.report);
      Alcotest.(check (list string))
        (name ^ " lint clean")
        []
        (List.filter_map
           (fun (pass, f) ->
             if f.Finding.severity = Finding.Error then
               Some (pass ^ ": " ^ Finding.to_string f)
             else None)
           !findings);
      Alcotest.(check (list string))
        (name ^ " translation validates")
        []
        (List.filter_map
           (fun (d : Diag.t) ->
             match d.Diag.severity with
             | Diag.Error -> Some (Diag.to_string d)
             | _ -> None)
           !diags);
      (* the validation hook actually fired *)
      Alcotest.(check bool) (name ^ " hook fired") true (!diags <> []))
    [ "phoenix"; "tket"; "paulihedral"; "tetris"; "naive" ]

let () =
  Alcotest.run "pipeline"
    [
      ( "golden",
        [
          Alcotest.test_case "phoenix uccsd" `Slow test_phoenix_golden_uccsd;
          Alcotest.test_case "phoenix qaoa" `Quick test_phoenix_golden_qaoa;
          Alcotest.test_case "baselines" `Slow test_baseline_golden;
        ] );
      ( "trace",
        [
          Alcotest.test_case "telescopes (all pipelines)" `Slow
            test_trace_telescopes_all_pipelines;
          prop_trace_telescopes;
          Alcotest.test_case "pass_times = trace" `Quick
            test_pass_times_match_trace;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names" `Quick test_registry_names;
          Alcotest.test_case "catalog" `Quick test_catalog_covers_all_pipelines;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "clean on real pipelines" `Quick
            test_hooks_clean_on_real_pipelines;
        ] );
    ]
