module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Cmat = Helpers.Cmat
module Unitary = Helpers.Unitary
module Topology = Phoenix_topology.Topology
module Layout = Phoenix_router.Layout
module Sabre = Phoenix_router.Sabre
module Rebase = Phoenix_circuit.Rebase

let cnot a b = Gate.Cnot (a, b)
let h q = Gate.G1 (Gate.H, q)
let rz t q = Gate.G1 (Gate.Rz t, q)

(* --- layout --- *)

let test_layout_trivial () =
  let l = Layout.trivial ~n_logical:3 ~n_physical:5 in
  Alcotest.(check int) "physical of 2" 2 (Layout.physical_of l 2);
  Alcotest.(check (option int)) "logical of 4" None (Layout.logical_of l 4);
  Alcotest.(check (option int)) "logical of 1" (Some 1) (Layout.logical_of l 1)

let test_layout_swap () =
  let l = Layout.trivial ~n_logical:2 ~n_physical:3 in
  let l' = Layout.swap_physical l 0 2 in
  Alcotest.(check int) "moved" 2 (Layout.physical_of l' 0);
  Alcotest.(check (option int)) "vacated" None (Layout.logical_of l' 0);
  Alcotest.(check int) "untouched" 1 (Layout.physical_of l' 1);
  (* original is unchanged (immutability) *)
  Alcotest.(check int) "original" 0 (Layout.physical_of l 0)

let test_layout_injective () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Layout.of_l2p: not injective")
    (fun () -> ignore (Layout.of_l2p ~n_physical:3 [| 1; 1 |]))

(* --- routing: respects topology --- *)

let respects_topology topo circ =
  List.for_all
    (fun g ->
      match Gate.pair g with
      | Some (a, b) -> Topology.are_adjacent topo a b
      | None -> true)
    (Circuit.gates circ)

let test_route_line () =
  let topo = Topology.line 4 in
  let circ = Circuit.create 4 [ cnot 0 3; cnot 1 2 ] in
  let r = Sabre.route topo circ in
  Alcotest.(check bool) "respects topology" true (respects_topology topo r.Sabre.circuit);
  Alcotest.(check bool) "needs swaps" true (r.Sabre.num_swaps > 0);
  Alcotest.(check int) "2q conserved" (2 + r.Sabre.num_swaps)
    (Circuit.count_2q r.Sabre.circuit)

let test_route_adjacent_needs_no_swap () =
  let topo = Topology.line 3 in
  let circ = Circuit.create 3 [ cnot 0 1; cnot 1 2; h 0; rz 0.4 2 ] in
  let r = Sabre.route topo circ in
  Alcotest.(check int) "no swaps" 0 r.Sabre.num_swaps;
  Alcotest.(check int) "gates preserved" 4 (Circuit.length r.Sabre.circuit)

(* permutation matrix of a full layout (n_logical = n_physical): maps the
   logical basis into the physical basis *)
let perm_matrix n layout =
  let dim = 1 lsl n in
  let m = Cmat.create dim dim in
  for logical = 0 to dim - 1 do
    let physical = ref 0 in
    for l = 0 to n - 1 do
      let bit = (logical lsr (n - 1 - l)) land 1 in
      if bit = 1 then begin
        let p = Layout.physical_of layout l in
        physical := !physical lor (1 lsl (n - 1 - p))
      end
    done;
    Cmat.set m !physical logical Complex.one
  done;
  m

let routed_equivalent topo circ =
  let r = Sabre.route topo circ in
  let n = Circuit.num_qubits circ in
  let u_logical = Unitary.circuit_unitary circ in
  let u_routed = Unitary.circuit_unitary (Rebase.to_cnot_basis r.Sabre.circuit) in
  (* U_routed · M_init = M_final · U_logical *)
  let lhs = Cmat.mul u_routed (perm_matrix n r.Sabre.initial_layout) in
  let rhs = Cmat.mul (perm_matrix n r.Sabre.final_layout) u_logical in
  respects_topology topo r.Sabre.circuit && Helpers.unitary_equiv ~tol:1e-7 lhs rhs

let random_circuit_gen n =
  let open QCheck2.Gen in
  let pairs =
    map
      (fun (a, d) ->
        let b = (a + 1 + d) mod n in
        a, b)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 2)))
  in
  list_size (int_range 0 20)
    (oneof
       [
         map (fun (a, b) -> cnot a b) pairs;
         map (fun q -> h q) (int_range 0 (n - 1));
         map (fun (q, t) -> rz t q) (pair (int_range 0 (n - 1)) Helpers.angle_gen);
       ])

let prop_route_preserves_unitary_line =
  Helpers.qtest ~count:60 "routing on a line preserves the permuted unitary"
    (random_circuit_gen 4)
    (fun gates -> routed_equivalent (Topology.line 4) (Circuit.create 4 gates))

let prop_route_preserves_unitary_ring =
  Helpers.qtest ~count:40 "routing on a ring preserves the permuted unitary"
    (random_circuit_gen 4)
    (fun gates -> routed_equivalent (Topology.ring 4) (Circuit.create 4 gates))

let prop_route_respects_topology_heavy_hex =
  Helpers.qtest ~count:20 "routing respects heavy-hex adjacency"
    (random_circuit_gen 8)
    (fun gates ->
      let topo = Topology.heavy_hex ~widths:[ 5; 5 ] in
      let circ = Circuit.create 8 gates in
      let r = Sabre.route topo circ in
      respects_topology topo r.Sabre.circuit)

let test_refinement_not_worse_much () =
  (* refinement should yield a valid routing too *)
  let topo = Topology.line 5 in
  let gates = [ cnot 0 4; cnot 1 3; cnot 0 2; cnot 2 4; cnot 1 4 ] in
  let circ = Circuit.create 5 gates in
  let r = Sabre.route_with_refinement ~iterations:2 topo circ in
  Alcotest.(check bool) "valid" true (respects_topology topo r.Sabre.circuit)

let test_bridge_routing_correct () =
  (* CNOT(0,2) on a 3-line with no other gates: bridge applies, layout
     unchanged, unitary preserved exactly (no output permutation). *)
  let topo = Topology.line 3 in
  let circ = Circuit.create 3 [ cnot 0 2 ] in
  let r = Sabre.route ~use_bridge:true topo circ in
  Alcotest.(check int) "no swaps" 0 r.Sabre.num_swaps;
  Alcotest.(check int) "four cnots" 4 (Circuit.count_2q r.Sabre.circuit);
  Alcotest.(check bool) "topology ok" true (respects_topology topo r.Sabre.circuit);
  Helpers.check_equiv "bridge unitary"
    (Unitary.circuit_unitary circ)
    (Unitary.circuit_unitary r.Sabre.circuit)

let prop_bridge_routing_equivalent =
  Helpers.qtest ~count:40 "bridge-enabled routing preserves permuted unitary"
    (random_circuit_gen 4)
    (fun gates ->
      let topo = Topology.line 4 in
      let circ = Circuit.create 4 gates in
      let r = Sabre.route ~use_bridge:true topo circ in
      let n = Circuit.num_qubits circ in
      let u_logical = Unitary.circuit_unitary circ in
      let u_routed = Unitary.circuit_unitary (Rebase.to_cnot_basis r.Sabre.circuit) in
      let lhs = Cmat.mul u_routed (perm_matrix n r.Sabre.initial_layout) in
      let rhs = Cmat.mul (perm_matrix n r.Sabre.final_layout) u_logical in
      respects_topology topo r.Sabre.circuit
      && Helpers.unitary_equiv ~tol:1e-7 lhs rhs)

let test_device_too_small () =
  Alcotest.check_raises "too small"
    (Invalid_argument
       "Sabre.route: circuit needs 3 logical qubits but the device has only 2")
    (fun () ->
      ignore (Sabre.route (Topology.line 2) (Circuit.create 3 [ cnot 0 2 ])))

let () =
  Alcotest.run "router"
    [
      ( "layout",
        [
          Alcotest.test_case "trivial" `Quick test_layout_trivial;
          Alcotest.test_case "swap" `Quick test_layout_swap;
          Alcotest.test_case "injective" `Quick test_layout_injective;
        ] );
      ( "sabre",
        [
          Alcotest.test_case "line routing" `Quick test_route_line;
          Alcotest.test_case "adjacent no swaps" `Quick
            test_route_adjacent_needs_no_swap;
          Alcotest.test_case "refinement valid" `Quick test_refinement_not_worse_much;
          Alcotest.test_case "bridge routing" `Quick test_bridge_routing_correct;
          Alcotest.test_case "device too small" `Quick test_device_too_small;
        ] );
      ( "props",
        [
          prop_route_preserves_unitary_line;
          prop_route_preserves_unitary_ring;
          prop_route_respects_topology_heavy_hex;
          prop_bridge_routing_equivalent;
        ] );
    ]
