(* Parametric compilation: compile once, rebind angles.

   Headline property under test: [Template.bind (compile_template H) θ]
   is bit-identical — gate structure AND IEEE angle bits — to a direct
   [compile] of H at θ, for generic (non-degenerate) angles.  Checked as
   goldens on the LiH/QAOA presets across option combos (logical CNOT,
   SU(4), heavy-hex routing, exact mode) and as a qcheck differential
   over random block programs and angle vectors.  Plus: binds run no
   pipeline passes (single-entry "bind" trace), every parameter stays
   live through simplify/peephole (slot survival), template compiles hit
   the structure-keyed synthesis cache across parameter values (mem and
   disk tiers, warm ≡ cold), budget expiry never yields a partial
   template, and degraded compiles refuse to template. *)

module Pauli_string = Helpers.Pauli_string
module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Angle = Phoenix_pauli.Angle
module Compiler = Phoenix.Compiler
module Template = Phoenix.Template
module Pass = Phoenix.Pass
module Cache = Phoenix_cache.Cache
module Budget = Phoenix_util.Budget
module Workloads = Phoenix_experiments.Workloads

let cache_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "phoenix-template-test-%d" (Unix.getpid ()))
  in
  Unix.putenv "PHOENIX_CACHE_DIR" d;
  d

let fresh_cache () =
  ignore (Cache.Persist.clear ~dir:cache_dir ());
  Cache.clear_memory ();
  Cache.reset_stats ()

(* Bit-exact circuit rendering: [Gate.to_string] prints consts with %g
   (lossy) and [Gate.equal] treats all NaNs as equal, so angles are
   appended as raw IEEE-754 bits. *)
let gate_bits g =
  let bits =
    List.rev
      (Gate.fold_angles (fun acc t -> Int64.bits_of_float t :: acc) [] g)
  in
  Gate.to_string g ^ "|"
  ^ String.concat "," (List.map (Printf.sprintf "%Lx") bits)

let circuit_bits c = List.map gate_bits (Circuit.gates c)

let check_bit_identical what expected actual =
  Alcotest.(check (list string)) what (circuit_bits expected)
    (circuit_bits actual)

(* A base-block program (one parameter per block, angles scaled by the
   parameter) in both concrete and symbolic form. *)
let concrete_blocks base_blocks theta =
  List.mapi
    (fun k block ->
      List.map (fun (p, base) -> (p, theta.(k) *. base)) block)
    base_blocks

let symbolic_blocks base_blocks =
  List.mapi
    (fun k block ->
      List.map
        (fun (p, base) -> (p, Angle.param ~index:k ~scale:base))
        block)
    base_blocks

let param_names base_blocks =
  Array.init (List.length base_blocks) (Printf.sprintf "theta%d")

(* Deterministic generic angles, bounded away from every degenerate
   point (0 and multiples of π would let the const path drop or merge
   rotations the slot path must keep). *)
let generic_theta ?(seed = 0) n =
  Array.init n (fun k ->
      let x = Float.rem (0.327 +. (0.691 *. float (k + (7 * seed)))) 2.9 in
      0.11 +. x)

let lih = lazy (List.hd (Workloads.uccsd_suite ~labels:[ "LiH_frz_JW" ] ()))

let qaoa_blocks =
  lazy
    (let case =
       List.find
         (fun (c : Workloads.qaoa_case) -> c.Workloads.qlabel = "Reg3-16")
         (Workloads.qaoa_suite ())
     in
     (case.Workloads.qn, List.map (fun g -> [ g ]) case.Workloads.qgadgets))

let option_combos =
  lazy
    (let heavy_hex = Workloads.heavy_hex () in
     [
       ("logical-cnot", Compiler.default_options);
       ("su4", { Compiler.default_options with Compiler.isa = Compiler.Su4_isa });
       ( "heavy-hex",
         {
           Compiler.default_options with
           Compiler.target = Compiler.Hardware heavy_hex;
         } );
       ("exact", { Compiler.default_options with Compiler.exact = true });
     ])

let bind_equals_compile ~what ~options n base_blocks theta =
  let tmpl =
    Compiler.compile_template ~options ~params:(param_names base_blocks) n
      (symbolic_blocks base_blocks)
  in
  let direct =
    Compiler.compile_blocks ~options n (concrete_blocks base_blocks theta)
  in
  let bound, trace = Template.bind_with_trace tmpl theta in
  Alcotest.(check (list string))
    (what ^ ": bind ran only the bind step")
    [ "bind" ]
    (List.map (fun (e : Pass.trace_entry) -> e.Pass.pass) trace);
  check_bit_identical
    (what ^ ": bind == compile")
    direct.Compiler.circuit bound

let test_golden_lih () =
  fresh_cache ();
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  let theta = generic_theta (List.length base) in
  List.iter
    (fun (name, options) ->
      bind_equals_compile ~what:("LiH " ^ name) ~options case.Workloads.n base
        theta)
    (Lazy.force option_combos)

let test_golden_qaoa () =
  fresh_cache ();
  let n, base = Lazy.force qaoa_blocks in
  let theta = generic_theta ~seed:3 (List.length base) in
  List.iter
    (fun (name, options) ->
      bind_equals_compile ~what:("QAOA " ^ name) ~options n base theta)
    (Lazy.force option_combos)

let test_rebind_many () =
  fresh_cache ();
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  let options = Compiler.default_options in
  let tmpl =
    Compiler.compile_template ~options ~params:(param_names base)
      case.Workloads.n (symbolic_blocks base)
  in
  for seed = 1 to 5 do
    let theta = generic_theta ~seed (List.length base) in
    let direct =
      Compiler.compile_blocks ~options case.Workloads.n
        (concrete_blocks base theta)
    in
    check_bit_identical
      (Printf.sprintf "rebind #%d == compile" seed)
      direct.Compiler.circuit (Template.bind tmpl theta)
  done

(* Every declared parameter stays live through simplify/assembly/
   peephole/lowering: perturbing any single component changes the bound
   circuit's angle bits. *)
let test_all_parameters_live () =
  fresh_cache ();
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  let arity = List.length base in
  let tmpl =
    Compiler.compile_template ~params:(param_names base) case.Workloads.n
      (symbolic_blocks base)
  in
  Alcotest.(check bool)
    "slot count covers the arity" true
    (Template.slot_count tmpl >= arity);
  let theta = generic_theta arity in
  let reference = circuit_bits (Template.bind tmpl theta) in
  for k = 0 to arity - 1 do
    let theta' = Array.copy theta in
    theta'.(k) <- theta'.(k) +. 0.173;
    let perturbed = circuit_bits (Template.bind tmpl theta') in
    Alcotest.(check bool)
      (Printf.sprintf "parameter %d reaches the circuit" k)
      false
      (List.equal String.equal reference perturbed)
  done

let test_bind_arity_mismatch () =
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  let tmpl =
    Compiler.compile_template ~params:(param_names base) case.Workloads.n
      (symbolic_blocks base)
  in
  Alcotest.check_raises "short vector rejected"
    (Invalid_argument
       (Printf.sprintf "Template.bind: 1 value for %d parameters"
          (List.length base)))
    (fun () -> ignore (Template.bind tmpl [| 0.5 |]))

(* qcheck differential: random block programs, random generic angles. *)
let nonzero_angle_gen =
  QCheck2.Gen.map
    (fun x -> if Float.abs x < 0.05 then x +. 0.11 else x)
    Helpers.angle_gen

let random_blocks_gen n =
  let open QCheck2.Gen in
  let block =
    let* len = int_range 1 3 in
    list_size (return len)
      (pair (Helpers.nontrivial_pauli_string_gen n) nonzero_angle_gen)
  in
  let* blocks = int_range 1 4 in
  list_size (return blocks) block

let qcheck_differential =
  QCheck2.Test.make ~count:40
    ~name:"bind(compile_template) == compile (random programs and angles)"
    QCheck2.Gen.(
      let n = 4 in
      pair (random_blocks_gen n)
        (list_size (return 4) nonzero_angle_gen))
    (fun (base_blocks, theta_list) ->
      fresh_cache ();
      let n = 4 in
      let arity = List.length base_blocks in
      let theta = Array.of_list (List.filteri (fun i _ -> i < arity) theta_list) in
      let theta =
        if Array.length theta < arity then
          Array.init arity (fun i ->
              if i < Array.length theta then theta.(i) else 0.37 +. float i)
        else theta
      in
      let tmpl =
        Compiler.compile_template ~params:(param_names base_blocks) n
          (symbolic_blocks base_blocks)
      in
      let direct =
        Compiler.compile_blocks n (concrete_blocks base_blocks theta)
      in
      List.equal String.equal
        (circuit_bits direct.Compiler.circuit)
        (circuit_bits (Template.bind tmpl theta)))

(* The synthesis cache keys on structure, not angle bits: a second
   template compile of the same program hits every group even though its
   slots are fresh arena ids, and the bound results stay bit-identical
   (mem tier here, disk tier below). *)
let test_cache_hits_across_compiles () =
  fresh_cache ();
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  let theta = generic_theta (List.length base) in
  let t1 =
    Compiler.compile_template ~params:(param_names base) case.Workloads.n
      (symbolic_blocks base)
  in
  let t2 =
    Compiler.compile_template ~params:(param_names base) case.Workloads.n
      (symbolic_blocks base)
  in
  let stats2 = (Template.report t2).Compiler.cache_stats in
  Alcotest.(check bool)
    "second template compile hits the cache" true
    (stats2.Cache.hits > 0 && stats2.Cache.misses = 0);
  check_bit_identical "warm bind == cold bind"
    (Template.bind t1 theta) (Template.bind t2 theta)

let test_cache_disk_roundtrip () =
  fresh_cache ();
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  let theta = generic_theta ~seed:2 (List.length base) in
  let options = { Compiler.default_options with Compiler.cache = Cache.Disk } in
  let t1 =
    Compiler.compile_template ~options ~params:(param_names base)
      case.Workloads.n (symbolic_blocks base)
  in
  (* Drop the memory tier: the second compile must replay from disk,
     remapping the stored rank-relative slots onto fresh arena ids. *)
  Cache.clear_memory ();
  Cache.reset_stats ();
  let t2 =
    Compiler.compile_template ~options ~params:(param_names base)
      case.Workloads.n (symbolic_blocks base)
  in
  let stats2 = (Template.report t2).Compiler.cache_stats in
  Alcotest.(check bool)
    "second template compile replays from disk" true
    (stats2.Cache.disk_hits > 0);
  check_bit_identical "disk-replayed bind == cold bind"
    (Template.bind t1 theta) (Template.bind t2 theta)

(* Templates and concrete compiles share cache buckets without false
   hits: interleaving them must not change either one's output. *)
let test_cache_no_cross_contamination () =
  fresh_cache ();
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  let theta = generic_theta ~seed:4 (List.length base) in
  let cold =
    let () = fresh_cache () in
    Compiler.compile_blocks case.Workloads.n (concrete_blocks base theta)
  in
  fresh_cache ();
  let tmpl =
    Compiler.compile_template ~params:(param_names base) case.Workloads.n
      (symbolic_blocks base)
  in
  let direct =
    Compiler.compile_blocks case.Workloads.n (concrete_blocks base theta)
  in
  check_bit_identical "concrete compile unchanged by template traffic"
    cold.Compiler.circuit direct.Compiler.circuit;
  check_bit_identical "bind unchanged by concrete traffic"
    cold.Compiler.circuit (Template.bind tmpl theta)

(* Budget expiry during a template compile surfaces as either
   [Pass.Interrupted] (no template at all) or [Pass.Failed] (a ladder
   absorbed the expiry — degraded results refuse to template); it never
   yields a partially-slotted template.  A re-run with a fresh budget is
   clean. *)
let test_budget_interrupt () =
  fresh_cache ();
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  let attempt checks =
    let options =
      {
        Compiler.default_options with
        Compiler.budget = Budget.after_checks checks;
        Compiler.cache = Cache.Off;
      }
    in
    match
      Compiler.compile_template ~options ~params:(param_names base)
        case.Workloads.n (symbolic_blocks base)
    with
    | tmpl -> `Template tmpl
    | exception Pass.Interrupted _ -> `Interrupted
    | exception Pass.Failed { pass; _ } -> `Failed pass
  in
  List.iter
    (fun outcome ->
      match outcome with
      | `Template tmpl ->
        (* If a tiny budget somehow sufficed, the template must still be
           fully certified: binding works and covers every parameter. *)
        ignore (Template.bind tmpl (generic_theta (List.length base)))
      | `Interrupted -> ()
      | `Failed pass ->
        Alcotest.(check string)
          "degradations are refused by the parametrize pass" "parametrize"
          pass)
    (List.map attempt [ 1; 5; 50; 500 ]);
  (* Clean re-run after the interrupts. *)
  fresh_cache ();
  let tmpl =
    Compiler.compile_template ~params:(param_names base) case.Workloads.n
      (symbolic_blocks base)
  in
  let theta = generic_theta (List.length base) in
  let direct =
    Compiler.compile_blocks case.Workloads.n (concrete_blocks base theta)
  in
  check_bit_identical "clean re-run after interrupts"
    direct.Compiler.circuit (Template.bind tmpl theta)

let test_parametrize_in_trace () =
  fresh_cache ();
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  let tmpl =
    Compiler.compile_template ~params:(param_names base) case.Workloads.n
      (symbolic_blocks base)
  in
  let trace = (Template.report tmpl).Compiler.trace in
  Alcotest.(check bool)
    "parametrize is the terminal pass" true
    (match List.rev trace with
    | (e : Pass.trace_entry) :: _ -> e.Pass.pass = "parametrize"
    | [] -> false)

let test_arity_violation_fails () =
  fresh_cache ();
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  (* Declare one parameter fewer than the slots reference. *)
  let params =
    Array.init
      (List.length base - 1)
      (Printf.sprintf "theta%d")
  in
  Alcotest.(check bool)
    "undeclared parameter is refused" true
    (match
       Compiler.compile_template ~params case.Workloads.n
         (symbolic_blocks base)
     with
    | _ -> false
    | exception Pass.Failed { pass = "parametrize"; _ } -> true)

(* Batch binds share one Angle arena snapshot; each element must still
   be gate-for-gate, bit-for-bit identical to a standalone bind. *)
let test_bind_batch_equals_sequential () =
  fresh_cache ();
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  let arity = List.length base in
  let tmpl =
    Compiler.compile_template ~params:(param_names base) case.Workloads.n
      (symbolic_blocks base)
  in
  let thetas = List.init 7 (fun seed -> generic_theta ~seed arity) in
  let batch = Template.bind_batch tmpl thetas in
  Alcotest.(check int) "batch length" (List.length thetas) (List.length batch);
  List.iteri
    (fun k (theta, bound) ->
      check_bit_identical
        (Printf.sprintf "batch element %d == bind" k)
        (Template.bind tmpl theta) bound)
    (List.combine thetas batch);
  Alcotest.(check (list (list string))) "empty batch" []
    (List.map circuit_bits (Template.bind_batch tmpl []));
  Alcotest.check_raises "batch arity checked up front"
    (Invalid_argument
       (Printf.sprintf "Template.bind_batch: 1 value for %d parameters" arity))
    (fun () ->
      ignore (Template.bind_batch tmpl [ generic_theta arity; [| 0.5 |] ]))

let test_vqe_template_energy () =
  fresh_cache ();
  let spec =
    {
      Phoenix_ham.Uccsd.name = "H2_like";
      n_spatial = 2;
      n_electrons = 2;
      frozen = 0;
    }
  in
  let problem =
    Phoenix_vqe.Vqe.uccsd_problem Phoenix_ham.Fermion.Jordan_wigner spec
  in
  let ansatz = problem.Phoenix_vqe.Vqe.ansatz in
  let tmpl = Phoenix_vqe.Ansatz.template ansatz in
  let theta =
    generic_theta ~seed:5 (Phoenix_vqe.Ansatz.num_parameters ansatz)
  in
  let direct = Phoenix_vqe.Vqe.energy problem theta in
  let bound =
    Phoenix_vqe.Vqe.energy_of_circuit problem
      (Phoenix_vqe.Ansatz.bind tmpl theta)
  in
  Alcotest.(check (float 0.0)) "template energy == direct energy" direct bound

let () =
  Alcotest.run "template"
    [
      ( "bind == compile",
        [
          Alcotest.test_case "golden LiH (all option combos)" `Slow
            test_golden_lih;
          Alcotest.test_case "golden QAOA (all option combos)" `Slow
            test_golden_qaoa;
          Alcotest.test_case "rebind sweep" `Quick test_rebind_many;
          QCheck_alcotest.to_alcotest qcheck_differential;
        ] );
      ( "slots",
        [
          Alcotest.test_case "all parameters live" `Quick
            test_all_parameters_live;
          Alcotest.test_case "bind arity mismatch" `Quick
            test_bind_arity_mismatch;
          Alcotest.test_case "parametrize in trace" `Quick
            test_parametrize_in_trace;
          Alcotest.test_case "arity violation refused" `Quick
            test_arity_violation_fails;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hits across template compiles" `Quick
            test_cache_hits_across_compiles;
          Alcotest.test_case "disk round-trip" `Quick
            test_cache_disk_roundtrip;
          Alcotest.test_case "no cross-contamination" `Quick
            test_cache_no_cross_contamination;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "budget interrupt yields no partial template"
            `Quick test_budget_interrupt;
        ] );
      ( "batch",
        [
          Alcotest.test_case "bind_batch == sequential binds" `Quick
            test_bind_batch_equals_sequential;
        ] );
      ( "vqe",
        [
          Alcotest.test_case "template energy == direct energy" `Quick
            test_vqe_template_energy;
        ] );
    ]
