module Vqe = Phoenix_vqe.Vqe
module Ansatz = Phoenix_vqe.Ansatz
module Optimize = Phoenix_vqe.Optimize
module Fermion = Phoenix_ham.Fermion
module Hamiltonian = Phoenix_ham.Hamiltonian
module Es = Phoenix_ham.Electronic_structure
module Pauli_sum = Phoenix_ham.Pauli_sum

let h2_spec =
  { Phoenix_ham.Uccsd.name = "H2_like"; n_spatial = 2; n_electrons = 2; frozen = 0 }

(* --- electronic structure --- *)

let test_es_hermitian_terms () =
  List.iter
    (fun enc ->
      let h = Es.synthetic ~seed:3 enc ~n_spatial:2 in
      Alcotest.(check int) "qubits" 4 (Hamiltonian.num_qubits h);
      Alcotest.(check bool) "nonempty" true (Hamiltonian.num_terms h > 0))
    [ Fermion.Jordan_wigner; Fermion.Bravyi_kitaev ]

let test_es_rejects_asymmetric () =
  Alcotest.check_raises "asym"
    (Invalid_argument "Electronic_structure: one_body not symmetric") (fun () ->
      ignore
        (Es.of_integrals Fermion.Jordan_wigner
           ~one_body:[| [| 0.0; 1.0 |]; [| 0.5; 0.0 |] |]
           ~two_body_density:(Array.make_matrix 4 4 0.0)))

let test_es_jw_bk_isospectral () =
  (* the two encodings must produce the same spectrum *)
  let spectrum enc =
    let h = Es.hubbard_chain ~t:1.0 ~u:2.0 enc 2 in
    let m =
      Phoenix_linalg.Unitary.hamiltonian_matrix (Hamiltonian.num_qubits h)
        (List.map
           (fun (t : Phoenix_pauli.Pauli_term.t) ->
             t.Phoenix_pauli.Pauli_term.pauli, t.Phoenix_pauli.Pauli_term.coeff)
           (Hamiltonian.terms h))
    in
    let d = Phoenix_linalg.Herm.eig m in
    let eigs = Array.copy d.Phoenix_linalg.Herm.eigenvalues in
    Array.sort compare eigs;
    eigs
  in
  let jw = spectrum Fermion.Jordan_wigner and bk = spectrum Fermion.Bravyi_kitaev in
  Array.iteri
    (fun i e ->
      Alcotest.(check (float 1e-7)) (Printf.sprintf "eig %d" i) e bk.(i))
    jw

let test_hubbard_structure () =
  let h = Es.hubbard_chain ~t:1.0 ~u:4.0 Fermion.Jordan_wigner 3 in
  Alcotest.(check int) "qubits" 6 (Hamiltonian.num_qubits h);
  (* hopping: 2 bonds × 2 spins × 2 strings = 8; U: 3 ZZ + locals *)
  Alcotest.(check bool) "has terms" true (Hamiltonian.num_terms h >= 11)

(* --- ansatz --- *)

let test_ansatz_parameters () =
  let cluster = Phoenix_ham.Uccsd.ansatz Fermion.Jordan_wigner h2_spec in
  let a = Ansatz.of_hamiltonian cluster in
  (* H2-like: 2 singles + 1 double = 3 excitation blocks *)
  Alcotest.(check int) "parameters" 3 (Ansatz.num_parameters a);
  Alcotest.(check int) "qubits" 4 (Ansatz.num_qubits a);
  Alcotest.check_raises "arity" (Invalid_argument "Ansatz.gadgets: parameter arity mismatch")
    (fun () -> ignore (Ansatz.gadgets a [| 0.0 |]))

let test_ansatz_zero_parameters_identity () =
  let cluster = Phoenix_ham.Uccsd.ansatz Fermion.Jordan_wigner h2_spec in
  let a = Ansatz.of_hamiltonian cluster in
  let v = Ansatz.state a (Array.make 3 0.0) in
  (* zero parameters → all angles zero → |0000⟩ *)
  Alcotest.(check (float 1e-9)) "stays |0…0⟩" 1.0
    (Complex.norm (Phoenix_linalg.Statevector.amplitude v 0))

(* --- optimizers --- *)

let quadratic x =
  Array.fold_left (fun acc xi -> acc +. ((xi -. 1.5) ** 2.0)) 0.0 x

let test_nelder_mead_quadratic () =
  let x, trace = Optimize.nelder_mead ~iterations:400 quadratic [| 0.0; 0.0 |] in
  Alcotest.(check bool) "converged" true (trace.Optimize.best_value < 1e-6);
  Array.iter
    (fun xi -> Alcotest.(check (float 1e-2)) "arg" 1.5 xi)
    x

let test_spsa_improves () =
  let _, trace = Optimize.spsa ~iterations:300 quadratic [| 0.0; 0.0 |] in
  Alcotest.(check bool) "improved" true
    (trace.Optimize.best_value < quadratic [| 0.0; 0.0 |])

let test_spsa_deterministic () =
  let x1, _ = Optimize.spsa ~seed:5 ~iterations:50 quadratic [| 0.0 |] in
  let x2, _ = Optimize.spsa ~seed:5 ~iterations:50 quadratic [| 0.0 |] in
  Alcotest.(check bool) "same" true (x1 = x2)

(* --- measurement grouping --- *)

module Measurement = Phoenix_vqe.Measurement

let test_qwc_relation () =
  let ps = Helpers.Pauli_string.of_string in
  Alcotest.(check bool) "ZI ~ IZ" true
    (Measurement.qubit_wise_commuting (ps "ZI") (ps "IZ"));
  Alcotest.(check bool) "ZZ ~ ZI" true
    (Measurement.qubit_wise_commuting (ps "ZZ") (ps "ZI"));
  Alcotest.(check bool) "XX !~ ZZ (commuting but not QWC)" false
    (Measurement.qubit_wise_commuting (ps "XX") (ps "ZZ"))

let test_grouping_reduces_settings () =
  let h = Es.synthetic ~seed:5 Fermion.Jordan_wigner ~n_spatial:2 in
  let settings = Measurement.num_measurement_settings h in
  Alcotest.(check bool) "fewer settings than terms" true
    (settings < Hamiltonian.num_terms h);
  (* groups partition the terms *)
  let groups = Measurement.group_terms h in
  let total =
    List.fold_left (fun acc g -> acc + List.length g.Measurement.terms) 0 groups
  in
  Alcotest.(check int) "partition" (Hamiltonian.num_terms h) total

let test_sampled_estimate_converges () =
  let h = Phoenix_ham.Spin_models.tfim_chain ~j:1.0 ~h:0.5 3 in
  let circuit =
    Phoenix_circuit.Circuit.create 3
      [
        Phoenix_circuit.Gate.G1 (Phoenix_circuit.Gate.Ry 0.7, 0);
        Phoenix_circuit.Gate.Cnot (0, 1);
        Phoenix_circuit.Gate.G1 (Phoenix_circuit.Gate.Ry (-0.3), 2);
      ]
  in
  let state = Phoenix_linalg.Statevector.of_circuit circuit in
  let exact = Phoenix_linalg.Statevector.expectation state h in
  let sampled = Measurement.estimate ~shots_per_group:20000 ~seed:4 state h in
  Alcotest.(check bool)
    (Printf.sprintf "close (exact %.4f, sampled %.4f)" exact sampled)
    true
    (Float.abs (exact -. sampled) < 0.08)

(* --- batch evaluation --- *)

(* [Vqe.energies] routes through [Ansatz.bind_batch] (one Angle arena
   snapshot for the whole batch); the energies must be bit-for-bit equal
   to evaluating each point sequentially. *)
let test_energies_batch_equals_sequential () =
  let problem = Vqe.uccsd_problem Fermion.Jordan_wigner h2_spec in
  let arity = Ansatz.num_parameters problem.Vqe.ansatz in
  let tmpl = Ansatz.template problem.Vqe.ansatz in
  let thetas =
    List.init 5 (fun s ->
        Array.init arity (fun k -> 0.17 +. (0.31 *. float ((s * arity) + k))))
  in
  let batch = Vqe.energies problem tmpl thetas in
  let sequential =
    List.map
      (fun theta -> Vqe.energy_of_circuit problem (Ansatz.bind tmpl theta))
      thetas
  in
  Alcotest.(check int) "batch length" (List.length thetas) (List.length batch);
  List.iteri
    (fun k (want, got) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "energy %d bit-identical" k)
        want got)
    (List.combine sequential batch)

(* --- the full loop --- *)

let test_vqe_recovers_correlation () =
  let problem = Vqe.uccsd_problem Fermion.Jordan_wigner h2_spec in
  let reference =
    Vqe.energy problem (Array.make (Ansatz.num_parameters problem.Vqe.ansatz) 0.0)
  in
  let exact = Vqe.exact_ground_energy problem in
  Alcotest.(check bool) "reference above exact" true (reference >= exact -. 1e-9);
  let outcome = Vqe.minimize ~optimizer:`Nelder_mead ~iterations:300 problem in
  Alcotest.(check bool) "improves on reference" true
    (outcome.Vqe.energy <= reference +. 1e-9);
  (* variational principle: never below exact *)
  Alcotest.(check bool) "variational bound" true
    (outcome.Vqe.energy >= exact -. 1e-6);
  (* recovers most of the correlation energy *)
  let recovered = (reference -. outcome.Vqe.energy) /. (reference -. exact) in
  Alcotest.(check bool) "≥ 90% correlation" true (recovered > 0.9)

let () =
  Alcotest.run "vqe"
    [
      ( "electronic-structure",
        [
          Alcotest.test_case "synthetic builds" `Quick test_es_hermitian_terms;
          Alcotest.test_case "rejects asymmetric" `Quick test_es_rejects_asymmetric;
          Alcotest.test_case "JW/BK isospectral" `Quick test_es_jw_bk_isospectral;
          Alcotest.test_case "hubbard structure" `Quick test_hubbard_structure;
        ] );
      ( "ansatz",
        [
          Alcotest.test_case "parameters" `Quick test_ansatz_parameters;
          Alcotest.test_case "zero = identity" `Quick
            test_ansatz_zero_parameters_identity;
        ] );
      ( "optimizers",
        [
          Alcotest.test_case "nelder-mead" `Quick test_nelder_mead_quadratic;
          Alcotest.test_case "spsa improves" `Quick test_spsa_improves;
          Alcotest.test_case "spsa deterministic" `Quick test_spsa_deterministic;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "qwc relation" `Quick test_qwc_relation;
          Alcotest.test_case "grouping partitions" `Quick
            test_grouping_reduces_settings;
          Alcotest.test_case "sampled estimate" `Quick
            test_sampled_estimate_converges;
        ] );
      ( "batch",
        [
          Alcotest.test_case "energies == sequential" `Quick
            test_energies_batch_equals_sequential;
        ] );
      ( "loop",
        [
          Alcotest.test_case "recovers correlation" `Slow
            test_vqe_recovers_correlation;
        ] );
    ]
