#!/usr/bin/env bash
# Shell-level contract for the phoenix CLI's exit codes:
#   0 clean, 2 usage/input errors, 3 verification errors, 4 lint errors,
#   5 deadline exceeded with no fallback rung.
# Driven by dune (test/cli/dune); $1 is the phoenix executable.
set -u
BIN="$1"
fail=0

expect() {
  want="$1"; shift
  "$BIN" "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: phoenix $* -> exit $got (want $want)" >&2
    fail=1
  else
    echo "ok: phoenix $* -> $got"
  fi
}

W=uccsd:LiH_frz_JW

# clean runs
expect 0 compile "$W"
expect 0 compile "$W" --verify --lint
expect 0 analyze "$W"
expect 0 analyze --list
# dangling wire is a warning, not an error: exit stays 0
expect 0 analyze heisenberg:6 --inject-fault dangling

# pipeline registry: --pipeline dispatch, the passes listing, tracing
expect 0 compile "$W" --pipeline tket
expect 0 compile "$W" --pipeline phoenix --trace -
expect 0 passes
expect 0 passes --pipeline phoenix
expect 0 passes --pipeline 2qan

# a --trace file lands on disk and carries the schema marker
rm -f trace_probe.json
"$BIN" compile "$W" --trace trace_probe.json >/dev/null 2>&1
if grep -q '"phoenix-trace-v1"' trace_probe.json 2>/dev/null; then
  echo "ok: --trace wrote phoenix-trace-v1 JSON"
else
  echo "FAIL: --trace did not write phoenix-trace-v1 JSON" >&2
  fail=1
fi
rm -f trace_probe.json

# synthesis cache: disk round-trip in a private directory, warm output
# byte-identical to cold, and the cache subcommand's contract
CACHE_TMP="$(mktemp -d)"
export PHOENIX_CACHE_DIR="$CACHE_TMP"
expect 0 compile "$W" --cache off
expect 0 compile "$W" --cache mem --cache-stats
expect 0 compile "$W" --cache disk
expect 0 compile "$W" --cache disk --verify --lint
expect 0 cache stats
expect 0 cache stats --json
expect 0 cache audit
expect 0 cache warm "$W"
"$BIN" compile "$W" --cache off --dump > cache_cold.txt 2>/dev/null
"$BIN" compile "$W" --cache disk --dump > cache_warm.txt 2>/dev/null
if cmp -s cache_cold.txt cache_warm.txt; then
  echo "ok: --cache disk dump identical to cold"
else
  echo "FAIL: --cache disk dump differs from cold" >&2
  fail=1
fi
rm -f cache_cold.txt cache_warm.txt
# the 3/4 contract is unchanged when compiling through the disk tier
expect 3 compile "$W" --cache disk --verify --inject-fault out-of-isa
expect 4 compile "$W" --cache disk --lint --inject-fault nan-angle
expect 0 cache clear
expect 2 compile "$W" --cache no-such-tier
unset PHOENIX_CACHE_DIR
rm -rf "$CACHE_TMP"

# usage / input errors
expect 2 compile no-such-workload
expect 2 analyze
expect 2 compile "$W" --compiler no-such-compiler
expect 2 compile "$W" --pipeline no-such-pipeline
expect 2 passes --pipeline no-such-pipeline
expect 2 compile "$W" --topology no-such-topology
expect 2 compile heisenberg:6 --compiler 2qan

# verification errors (exit 3), which take precedence over lint errors
expect 3 compile "$W" --verify --inject-fault out-of-isa
expect 3 compile "$W" --verify --lint --inject-fault out-of-isa

# lint errors (exit 4)
expect 4 compile "$W" --lint --inject-fault nan-angle
expect 4 analyze "$W" --inject-fault out-of-isa
expect 4 analyze heisenberg:6 --inject-fault nan-angle

# deadlines: on a logical target every pass that can expire has a
# fallback rung, so an immediate deadline degrades but still completes
# (and the degraded circuit still verifies and lints clean); routing has
# no fallback, so a hardware target under the same deadline exits 5
expect 0 compile "$W" --timeout 0.000001
expect 0 compile "$W" --timeout 0.000001 --verify --lint
expect 5 compile "$W" --topology heavy-hex --timeout 0.000001
expect 2 compile "$W" --timeout=-1
# a degraded run advertises the ladder steps on stdout
if "$BIN" compile "$W" --timeout 0.000001 2>/dev/null | grep -q '^degraded:'; then
  echo "ok: degraded runs report their ladder steps"
else
  echo "FAIL: degraded run did not print a degraded: line" >&2
  fail=1
fi

# parametric templates: --template dumps cleanly; --bind must cover every
# parameter ('*=V' wildcard) and reject unknown names; baselines have no
# template support; linting an unbound template hits the unbound-slot
# finding (exit 4) while a bound one certifies clean
expect 0 compile "$W" --template
expect 0 compile "$W" --template --bind '*=1.0' --dump
expect 0 compile "$W" --bind '*=0.7' --verify --lint
expect 2 compile "$W" --bind 'theta0=0.5'
expect 2 compile "$W" --bind 'zeta=1.0,*=2.0'
expect 2 compile "$W" --bind 'theta0=abc,*=1.0'
expect 2 compile "$W" --template --pipeline tket
expect 4 compile "$W" --template --lint
# binding every parameter to 1.0 replays the plain compile byte-for-byte
"$BIN" compile "$W" --dump > bind_plain.txt 2>/dev/null
"$BIN" compile "$W" --template --bind '*=1.0' --dump > bind_bound.txt 2>/dev/null
if cmp -s bind_plain.txt bind_bound.txt; then
  echo "ok: --template --bind '*=1.0' --dump identical to plain --dump"
else
  echo "FAIL: bound-template dump differs from plain compile dump" >&2
  fail=1
fi
rm -f bind_plain.txt bind_bound.txt

# streaming: --stream N compiles N Trotter-step chunks with bounded peak
# memory; chunked gate output is identical to the whole-program compile
# repeated N times (gate lines start with an uppercase mnemonic — the
# stream summary block interleaves differently, so compare gates only);
# hardware targets, non-positive step counts and the template combo are
# usage errors
expect 0 compile heisenberg:6 --stream 1
expect 0 compile heisenberg:6 --stream 3 --verify --lint
expect 0 compile fermi-hubbard:2x2 --stream 2
expect 2 compile heisenberg:6 --stream 0
expect 2 compile heisenberg:6 --stream 2 --topology line
expect 2 compile heisenberg:6 --stream 1 --template
expect 3 compile heisenberg:6 --stream 1 --verify --inject-fault out-of-isa
expect 4 compile heisenberg:6 --stream 1 --lint --inject-fault nan-angle
"$BIN" compile heisenberg:6 --dump 2>/dev/null | grep -E '^[A-Z]' > stream_plain.txt
"$BIN" compile heisenberg:6 --stream 1 --dump 2>/dev/null | grep -E '^[A-Z]' > stream_one.txt
if cmp -s stream_plain.txt stream_one.txt; then
  echo "ok: --stream 1 gate dump identical to whole-program dump"
else
  echo "FAIL: --stream 1 gate dump differs from whole-program dump" >&2
  fail=1
fi
cat stream_plain.txt stream_plain.txt stream_plain.txt > stream_triple.txt
"$BIN" compile heisenberg:6 --stream 3 --dump 2>/dev/null | grep -E '^[A-Z]' > stream_three.txt
if cmp -s stream_triple.txt stream_three.txt; then
  echo "ok: --stream 3 gate dump is three chunked repetitions"
else
  echo "FAIL: --stream 3 gate dump is not three chunked repetitions" >&2
  fail=1
fi
rm -f stream_plain.txt stream_one.txt stream_triple.txt stream_three.txt

# symbolic certification: certify (and compile --certify) prove every
# boundary on clean runs, the unbound template certifies statically, and
# the --cert artifact carries the phoenix-cert-v1 schema marker
expect 0 certify "$W"
expect 0 certify "$W" --topology heavy-hex
expect 0 certify "$W" --template
expect 0 compile "$W" --certify
expect 0 compile "$W" --template --certify
expect 2 certify no-such-workload
rm -f cert_probe.json
"$BIN" certify "$W" --json cert_probe.json >/dev/null 2>&1
if grep -q '"phoenix-cert-v1"' cert_probe.json 2>/dev/null \
  && grep -q '"overall": *"proved"' cert_probe.json 2>/dev/null; then
  echo "ok: --cert wrote a proved phoenix-cert-v1 JSON"
else
  echo "FAIL: --cert did not write a proved phoenix-cert-v1 JSON" >&2
  fail=1
fi
rm -f cert_probe.json

# analysis selection: --only/--skip filter by name, unknown names are
# usage errors listing the registry
expect 0 analyze "$W" --only translation-validation
expect 0 analyze "$W" --only liveness,angle-sanity
expect 0 analyze "$W" --skip translation-validation
expect 2 analyze "$W" --only no-such-analysis
expect 2 analyze "$W" --skip no-such-analysis

# chaos soak: a short seeded run must classify every outcome (exit 0),
# and malformed plans or run counts are usage errors
expect 0 chaos --runs 2 --pipelines phoenix --workload heisenberg:4
expect 2 chaos --runs 1 --plan bogus
expect 2 chaos --runs 0
expect 2 chaos --runs 1 --pipelines no-such-pipeline

# serve: the daemon flag contract — exactly one of --socket/--port,
# bounds on ports and pool/queue/limit sizes, unreachable addresses —
# all exit 2; the self-test boots a real daemon on an ephemeral unix
# socket, round-trips ping/compile/template/stats/malformed through a
# client connection, and drains (exit 0)
expect 0 serve --self-test
expect 2 serve
expect 2 serve --port 99999
expect 2 serve --socket /no/such/dir/phx.sock
expect 2 serve --socket /tmp/phx_contract.sock --port 7777
expect 2 serve --port 7777 --workers 0
expect 2 serve --port 7777 --max-queue 0
expect 2 serve --port 7777 --max-request-kb 0
expect 2 serve --port 7777 --timeout=-1
expect 2 serve --connect bad-address
expect 2 serve --connect tcp:localhost:1

exit "$fail"
