(* The domain pool's contract is strict determinism: same results, same
   order, same error as the serial List.map, whatever the scheduling.
   The compiler's parallel group synthesis leans on every clause of it. *)

module Parallel = Phoenix_util.Parallel
module Compiler = Phoenix.Compiler
module Circuit = Phoenix_circuit.Circuit
module Pauli_string = Phoenix_pauli.Pauli_string
module Diag = Phoenix_verify.Diag

let test_matches_list_map () =
  let f x = (x * x) + 3 in
  List.iter
    (fun domains ->
      List.iter
        (fun len ->
          let xs = List.init len (fun i -> i - 7) in
          Alcotest.(check (list int))
            (Printf.sprintf "domains=%d len=%d" domains len)
            (List.map f xs)
            (Parallel.map ~domains f xs))
        [ 0; 1; 2; 3; 17; 64; 257 ])
    [ 1; 2; 4; 8 ]

let test_order_preserved () =
  (* Uneven per-item work so domains finish out of order; slots must
     still come back in input order. *)
  let f i =
    let acc = ref 0 in
    for k = 1 to (i mod 13) * 1000 do
      acc := !acc + k
    done;
    ignore !acc;
    Printf.sprintf "item-%d" i
  in
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list string))
    "order" (List.map f xs)
    (Parallel.map ~domains:8 f xs)

let test_exception_lowest_index () =
  (* Several items fail; the re-raised exception must be the lowest-index
     one regardless of which domain hit it first. *)
  let f x = if x >= 5 then failwith (Printf.sprintf "boom-%d" x) else x in
  Alcotest.check_raises "lowest failure wins" (Failure "boom-5") (fun () ->
      ignore (Parallel.map ~domains:4 f (List.init 30 Fun.id)))

let test_env_override () =
  let prev = Sys.getenv_opt "PHOENIX_DOMAINS" in
  let restore () =
    match prev with
    | Some v -> Unix.putenv "PHOENIX_DOMAINS" v
    | None -> Unix.putenv "PHOENIX_DOMAINS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "PHOENIX_DOMAINS" "3";
      Alcotest.(check int) "env override" 3 (Parallel.num_domains ());
      Unix.putenv "PHOENIX_DOMAINS" "junk";
      Alcotest.(check bool) "junk falls back" true (Parallel.num_domains () >= 1);
      Unix.putenv "PHOENIX_DOMAINS" "100000";
      Alcotest.(check int) "capped" 128 (Parallel.num_domains ()))

(* A seeded claim-order permutation is the auditor's stand-in for an
   adversarial scheduler; the pool's contract must survive every one. *)
let test_seeded_permutation () =
  let f x = (x * 31) mod 101 in
  List.iter
    (fun seed ->
      List.iter
        (fun len ->
          let xs = List.init len (fun i -> i - 3) in
          Alcotest.(check (list int))
            (Printf.sprintf "seed=%d len=%d" seed len)
            (List.map f xs)
            (Parallel.map ~domains:4 ~seed f xs))
        [ 0; 1; 5; 64; 133 ])
    [ 0; 1; 42; 1337 ]

let test_seed_env_override () =
  let prev = Sys.getenv_opt "PHOENIX_PARALLEL_SEED" in
  let restore () =
    Unix.putenv "PHOENIX_PARALLEL_SEED" (Option.value ~default:"" prev)
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "PHOENIX_PARALLEL_SEED" "7";
      let xs = List.init 50 Fun.id in
      Alcotest.(check (list int))
        "env-seeded map = List.map" (List.map succ xs)
        (Parallel.map ~domains:4 succ xs);
      Unix.putenv "PHOENIX_PARALLEL_SEED" "junk";
      Alcotest.(check (list int))
        "junk seed ignored" (List.map succ xs)
        (Parallel.map ~domains:4 succ xs))

(* Parallel and serial compilation must produce the same report,
   bit for bit: circuit, counts, and diagnostics in group order. *)
let blocks =
  List.map
    (List.map (fun (s, a) -> Pauli_string.of_string s, a))
    [
      [ "XXIIII", 0.3; "YYIIII", 0.4; "ZZIIII", 0.5 ];
      [ "IIXYII", 0.2; "IIYXII", 0.7 ];
      [ "IIIIZZ", 0.1; "IIIIXX", 0.6 ];
      [ "XIIIIX", 0.8; "YIIIIY", 0.9 ];
      [ "IZZIII", 0.15; "IXXIII", 0.25 ];
    ]

let test_parallel_serial_identical () =
  let compile domains =
    let options = { Compiler.default_options with domains; verify = true } in
    Compiler.compile_blocks ~options 6 blocks
  in
  let serial = compile 1 in
  List.iter
    (fun domains ->
      let par = compile domains in
      let tag fmt = Printf.sprintf fmt domains in
      Alcotest.(check bool)
        (tag "circuit identical (domains=%d)")
        true
        (Circuit.equal serial.Compiler.circuit par.Compiler.circuit);
      Alcotest.(check int)
        (tag "two_q (domains=%d)")
        serial.Compiler.two_q_count par.Compiler.two_q_count;
      Alcotest.(check int)
        (tag "one_q (domains=%d)")
        serial.Compiler.one_q_count par.Compiler.one_q_count;
      Alcotest.(check int)
        (tag "depth (domains=%d)")
        serial.Compiler.depth_2q par.Compiler.depth_2q;
      Alcotest.(check bool)
        (tag "diagnostics identical (domains=%d)")
        true
        (serial.Compiler.diagnostics = par.Compiler.diagnostics))
    [ 2; 4; 8 ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map = List.map" `Quick test_matches_list_map;
          Alcotest.test_case "order under skew" `Quick test_order_preserved;
          Alcotest.test_case "lowest-index exception" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "PHOENIX_DOMAINS override" `Quick test_env_override;
          Alcotest.test_case "seeded claim orders" `Quick test_seeded_permutation;
          Alcotest.test_case "PHOENIX_PARALLEL_SEED override" `Quick
            test_seed_env_override;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "parallel ≡ serial compile" `Quick
            test_parallel_serial_identical;
        ] );
    ]
