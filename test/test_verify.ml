(* Verified compilation: Clifford conjugation frames, Pauli-propagation
   and dense equivalence checks, structural validation, per-group fault
   recovery, and the PHOENIX-vs-baselines differential harness. *)

module Pauli = Helpers.Pauli
module Pauli_string = Helpers.Pauli_string
module Clifford2q = Helpers.Clifford2q
module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Cmat = Helpers.Cmat
module Unitary = Helpers.Unitary
module Diag = Phoenix_verify.Diag
module Frame = Phoenix_verify.Frame
module Equiv = Phoenix_verify.Equiv
module Structural = Phoenix_verify.Structural
module Group = Phoenix.Group
module Simplify = Phoenix.Simplify
module Synthesis = Phoenix.Synthesis
module Compiler = Phoenix.Compiler
module Sabre = Phoenix_router.Sabre
module Topology = Phoenix_topology.Topology

let ps = Pauli_string.of_string

(* --- frame: pullback vs dense conjugation --- *)

let clifford_gate_gen n =
  let open QCheck2.Gen in
  let g1 =
    map2
      (fun k q -> Gate.G1 (k, q))
      (oneofl [ Gate.H; Gate.S; Gate.Sdg; Gate.X; Gate.Y; Gate.Z ])
      (int_range 0 (n - 1))
  in
  let pair_gen =
    let* a = int_range 0 (n - 1) in
    let* b = int_range 0 (n - 2) in
    return (a, if b >= a then b + 1 else b)
  in
  let cnot = map (fun (a, b) -> Gate.Cnot (a, b)) pair_gen in
  let swap = map (fun (a, b) -> Gate.Swap (a, b)) pair_gen in
  let cliff2 = map (fun c -> Gate.Cliff2 c) (Helpers.clifford2q_gen n) in
  oneof [ g1; cnot; swap; cliff2 ]

let prop_frame_matches_dense =
  let n = 3 in
  Helpers.qtest ~count:150 "frame pullback ≡ dense U† P U"
    (QCheck2.Gen.pair
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 8) (clifford_gate_gen n))
       (Helpers.nontrivial_pauli_string_gen n))
    (fun (gates, p) ->
      let frame = Frame.identity n in
      List.iter (Frame.apply_gate frame) gates;
      let neg, image = Frame.image frame p in
      let u = Unitary.circuit_unitary (Circuit.create n gates) in
      let dense =
        Cmat.mul (Cmat.dagger u) (Cmat.mul (Unitary.pauli_matrix p) u)
      in
      let expected =
        let m = Unitary.pauli_matrix image in
        if neg then Cmat.scale { Complex.re = -1.0; im = 0.0 } m else m
      in
      Cmat.is_close ~tol:1e-9 dense expected)

let test_frame_identity () =
  let f = Frame.identity 4 in
  Alcotest.(check bool) "fresh frame is identity" true (Frame.is_identity f);
  Frame.apply_gate f (Gate.Cnot (0, 2));
  Alcotest.(check bool) "after CNOT not identity" false (Frame.is_identity f);
  Frame.apply_gate f (Gate.Cnot (0, 2));
  Alcotest.(check bool) "CNOT·CNOT cancels" true (Frame.is_identity f)

let test_frame_rejects_rotation () =
  let f = Frame.identity 2 in
  Alcotest.(check bool) "classified non-Clifford" false
    (Frame.is_clifford_gate (Gate.G1 (Gate.Rz 0.3, 0)));
  (match Frame.apply_gate f (Gate.G1 (Gate.Rz 0.3, 0)) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

(* --- propagation check on PHOENIX group synthesis --- *)

let prop_group_synthesis_exact_checks =
  Helpers.qtest ~count:80 "exact group synthesis passes propagation + dense"
    (Helpers.terms_gen 3 5)
    (fun terms ->
      let cfg = Simplify.run ~exact:true 3 terms in
      let c = Synthesis.cfg_to_circuit 3 cfg in
      Equiv.propagation_check ~exact:true 3 terms c = Ok ()
      && Equiv.unitary_check 3 terms c = Ok ())

let prop_group_synthesis_default_checks =
  Helpers.qtest ~count:80 "default group synthesis passes propagation"
    (Helpers.terms_gen 4 6)
    (fun terms ->
      let cfg = Simplify.run 4 terms in
      let c = Synthesis.cfg_to_circuit 4 cfg in
      Equiv.propagation_check 4 terms c = Ok ())

(* Simplify in exact mode preserves the group unitary on random 2–4
   qubit groups (checked through the new validator). *)
let prop_simplify_exact_small_groups =
  let open QCheck2.Gen in
  Helpers.qtest ~count:60 "exact simplify preserves 2–4 qubit group unitary"
    (let* n = int_range 2 4 in
     let* terms = Helpers.terms_gen n 5 in
     return (n, terms))
    (fun (n, terms) ->
      let c = Synthesis.cfg_to_circuit n (Simplify.run ~exact:true n terms) in
      Equiv.unitary_check n terms c = Ok ()
      && Equiv.propagation_check ~exact:true n terms c = Ok ())

(* An injected sign-flip fault in a BSF row must be caught. *)
let flip_one_angle cfg =
  let flipped = ref false in
  List.map
    (fun item ->
      match item with
      | Simplify.Core ((p, a) :: rest) when not !flipped ->
        flipped := true;
        Simplify.Core ((p, -.a) :: rest)
      | Simplify.Rotations ((p, a) :: rest) when not !flipped ->
        flipped := true;
        Simplify.Rotations ((p, -.a) :: rest)
      | _ -> item)
    cfg

let prop_sign_flip_caught =
  Helpers.qtest ~count:80 "sign-flip fault is caught by the checkers"
    (Helpers.terms_gen 3 4)
    (fun terms ->
      (* avoid angles where θ ≈ -θ *)
      let terms = List.map (fun (p, a) -> p, (Float.abs a +. 0.2)) terms in
      let cfg = Simplify.run ~exact:true 3 terms in
      let bad = Synthesis.cfg_to_circuit 3 (flip_one_angle cfg) in
      Equiv.propagation_check ~exact:true 3 terms bad <> Ok ()
      && Equiv.unitary_check 3 terms bad <> Ok ())

let test_propagation_catches_residual_frame () =
  (* a stray Clifford that never cancels *)
  let c = Circuit.create 2 [ Gate.G1 (Gate.H, 0); Gate.G1 (Gate.Rz 0.5, 0) ] in
  match Equiv.propagation_check 2 [ ps "XI", 0.5 ] c with
  | Error msg ->
    Alcotest.(check bool) "message is descriptive" true (String.length msg > 10)
  | Ok () -> Alcotest.fail "expected residual-frame error"

let test_propagation_exact_order () =
  (* XX then ZI anticommute; swapping them is Trotter-visible *)
  let terms = [ ps "XX", 0.4; ps "ZI", 0.7 ] in
  let swapped =
    Circuit.create 2
      [
        Gate.G1 (Gate.Rz 0.7, 0);
        Gate.Rpp { p0 = Pauli.X; p1 = Pauli.X; a = 0; b = 1; theta = 0.4 };
      ]
  in
  Alcotest.(check bool) "default mode accepts reordering" true
    (Equiv.propagation_check 2 terms swapped = Ok ());
  (match Equiv.propagation_check ~exact:true 2 terms swapped with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "exact mode must reject the reordering")

(* --- structural validation --- *)

let random_2q_circuit_gen n =
  QCheck2.Gen.map
    (fun pairs ->
      Circuit.create n (List.map (fun (a, b) -> Gate.Cnot (a, b)) pairs))
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 12)
       (QCheck2.Gen.map
          (fun (a, b) -> a, if b >= a then b + 1 else b)
          (QCheck2.Gen.pair
             (QCheck2.Gen.int_range 0 (n - 1))
             (QCheck2.Gen.int_range 0 (n - 2)))))

let prop_sabre_respects_coupling =
  let n = 6 in
  let topologies =
    [ "line", Topology.line n; "ring", Topology.ring n;
      "grid", Topology.grid ~rows:2 ~cols:3 ]
  in
  Helpers.qtest ~count:40 "SABRE-routed circuits stay on coupling edges"
    (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 2) (random_2q_circuit_gen n))
    (fun (ti, circ) ->
      let _, topo = List.nth topologies ti in
      let routed = Sabre.route_with_refinement topo circ in
      Structural.validate ~topology:topo routed.Sabre.circuit = [])

let test_structural_detects_violations () =
  let topo = Topology.line 3 in
  let c = Circuit.create 3 [ Gate.Cnot (0, 2) ] in
  let diags = Structural.validate ~topology:topo c in
  Alcotest.(check bool) "non-adjacent pair flagged" true
    (Diag.has_errors diags);
  let c2 =
    Circuit.create 3
      [ Gate.Rpp { p0 = Pauli.Z; p1 = Pauli.Z; a = 0; b = 1; theta = 0.1 } ]
  in
  Alcotest.(check bool) "Rpp outside CNOT alphabet" true
    (Diag.has_errors (Structural.validate ~isa:Structural.Cnot_basis c2));
  Alcotest.(check bool) "Rpp fine under no restriction" false
    (Diag.has_errors (Structural.validate c2))

(* --- compiler integration: fault injection and graceful recovery --- *)

let heisenberg4 = Phoenix_ham.Spin_models.heisenberg_chain 4

let verified_options =
  { Compiler.default_options with verify = true; exact = true }

let test_fault_injected_group_recovers () =
  let gadgets = Phoenix_ham.Hamiltonian.trotter_gadgets heisenberg4 in
  let groups = Group.group_gadgets 4 gadgets in
  Alcotest.(check bool) "have groups" true (List.length groups > 1);
  (* corrupt the first group's synthesis with a BSF sign flip *)
  let corrupted = List.hd groups in
  let synthesize (g : Group.t) =
    if g == corrupted then
      Synthesis.cfg_to_circuit 4
        (flip_one_angle (Simplify.run ~exact:true 4 g.Group.terms))
    else Synthesis.group_circuit ~exact:true g
  in
  let r = Compiler.compile_groups ~options:verified_options ~synthesize 4 groups in
  (* the fault was caught and recovered, not silently shipped *)
  Alcotest.(check bool) "recovery warning recorded" true
    (List.exists
       (fun d ->
         d.Diag.severity = Diag.Warning && d.Diag.group = Some 0
         && d.Diag.pass = "simplify")
       r.Compiler.diagnostics);
  Alcotest.(check bool) "no error diagnostics" false
    (Diag.has_errors r.Compiler.diagnostics);
  (* and the shipped circuit is the true unitary *)
  let reference = Unitary.program_unitary 4 gadgets in
  Helpers.check_equiv ~tol:1e-7 "recovered circuit correct" reference
    (Unitary.circuit_unitary r.Compiler.circuit)

let test_unfaulted_compile_verifies () =
  let r = Compiler.compile ~options:verified_options heisenberg4 in
  Alcotest.(check bool) "no errors" false
    (Diag.has_errors r.Compiler.diagnostics);
  Alcotest.(check bool) "end-to-end check ran" true
    (List.exists (fun d -> d.Diag.pass = "verify") r.Compiler.diagnostics)

let test_pass_times_reported () =
  let r = Compiler.compile heisenberg4 in
  let keys = List.map fst r.Compiler.pass_times in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " timed") true (List.mem k keys))
    [ "group"; "simplify"; "order"; "peephole"; "lower" ];
  List.iter
    (fun (k, t) ->
      Alcotest.(check bool) (k ^ " non-negative") true (t >= 0.0))
    r.Compiler.pass_times;
  let sum = List.fold_left (fun acc (_, t) -> acc +. t) 0.0 r.Compiler.pass_times in
  Alcotest.(check bool) "passes within wall time" true
    (sum <= r.Compiler.wall_time +. 1e-3)

let test_verify_off_no_diagnostics () =
  let r = Compiler.compile heisenberg4 in
  Alcotest.(check int) "no diagnostics without verify" 0
    (List.length r.Compiler.diagnostics)

(* --- acceptance: molecule presets and a 12-node QAOA instance --- *)

let check_zero_errors label (r : Compiler.report) =
  if Diag.has_errors r.Compiler.diagnostics then
    Alcotest.failf "%s: %s" label
      (String.concat "; "
         (List.map Diag.to_string (Diag.errors r.Compiler.diagnostics)))

let test_molecules_verify () =
  List.iter
    (fun (b : Phoenix_ham.Molecules.benchmark) ->
      let h =
        Phoenix_ham.Uccsd.ansatz b.Phoenix_ham.Molecules.encoding
          b.Phoenix_ham.Molecules.spec
      in
      let options = { Compiler.default_options with verify = true } in
      check_zero_errors b.Phoenix_ham.Molecules.label
        (Compiler.compile ~options h))
    Phoenix_ham.Molecules.table1_suite

let test_qaoa12_verify () =
  let graph = Phoenix_ham.Graphs.random_regular ~seed:7 ~degree:3 12 in
  let h = Phoenix_ham.Qaoa.maxcut_cost graph in
  let logical = { Compiler.default_options with verify = true } in
  check_zero_errors "qaoa12 logical" (Compiler.compile ~options:logical h);
  let topo = Topology.grid ~rows:3 ~cols:4 in
  let routed =
    { Compiler.default_options with verify = true; target = Compiler.Hardware topo }
  in
  check_zero_errors "qaoa12 routed" (Compiler.compile ~options:routed h)

(* --- differential harness: PHOENIX vs naive vs tket-like --- *)

let prop_differential_exact =
  Helpers.qtest ~count:30 "differential: phoenix(exact) ≡ naive ≡ program"
    (Helpers.terms_gen 3 6)
    (fun terms ->
      let reference = Unitary.program_unitary 3 terms in
      let r =
        Compiler.compile_gadgets
          ~options:{ Compiler.default_options with exact = true; verify = true }
          3 terms
      in
      let naive = Phoenix_baselines.Naive.compile 3 terms in
      (not (Diag.has_errors r.Compiler.diagnostics))
      && Helpers.unitary_equiv ~tol:1e-7 reference
           (Unitary.circuit_unitary r.Compiler.circuit)
      && Helpers.unitary_equiv ~tol:1e-7 reference
           (Unitary.circuit_unitary naive))

let commuting_terms_gen =
  (* mutually commuting (Z-diagonal) programs: every compiler must agree
     exactly, Trotter freedom or not *)
  QCheck2.Gen.list_size
    (QCheck2.Gen.int_range 2 6)
    (QCheck2.Gen.pair
       (QCheck2.Gen.oneofl
          [ ps "ZZI"; ps "IZZ"; ps "ZIZ"; ps "ZII"; ps "IZI"; ps "IIZ" ])
       Helpers.angle_gen)

let prop_differential_commuting =
  Helpers.qtest ~count:30
    "differential: commuting programs agree across all compilers"
    commuting_terms_gen
    (fun terms ->
      let reference = Unitary.program_unitary 3 terms in
      let phoenix =
        (Compiler.compile_gadgets
           ~options:{ Compiler.default_options with verify = true }
           3 terms)
          .Compiler.circuit
      in
      let naive = Phoenix_baselines.Naive.compile 3 terms in
      let tket = Phoenix_baselines.Tket_like.compile 3 terms in
      List.for_all
        (fun c ->
          Helpers.unitary_equiv ~tol:1e-7 reference (Unitary.circuit_unitary c))
        [ phoenix; naive; tket ])

let () =
  Alcotest.run "verify"
    [
      ( "frame",
        [
          Alcotest.test_case "identity" `Quick test_frame_identity;
          Alcotest.test_case "rejects rotations" `Quick
            test_frame_rejects_rotation;
          prop_frame_matches_dense;
        ] );
      ( "propagation",
        [
          prop_group_synthesis_exact_checks;
          prop_group_synthesis_default_checks;
          prop_simplify_exact_small_groups;
          prop_sign_flip_caught;
          Alcotest.test_case "residual frame" `Quick
            test_propagation_catches_residual_frame;
          Alcotest.test_case "exact order" `Quick test_propagation_exact_order;
        ] );
      ( "structural",
        [
          prop_sabre_respects_coupling;
          Alcotest.test_case "detects violations" `Quick
            test_structural_detects_violations;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "fault recovery" `Quick
            test_fault_injected_group_recovers;
          Alcotest.test_case "clean verify" `Quick test_unfaulted_compile_verifies;
          Alcotest.test_case "pass times" `Quick test_pass_times_reported;
          Alcotest.test_case "verify off" `Quick test_verify_off_no_diagnostics;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "molecule presets" `Slow test_molecules_verify;
          Alcotest.test_case "qaoa 12 nodes" `Quick test_qaoa12_verify;
        ] );
      ( "differential",
        [ prop_differential_exact; prop_differential_commuting ] );
    ]
