(* The static analyzer: clean bills of health for every compiler's
   output, fault-injection coverage for every defect class an analysis
   exists to catch, and the compiler-internal tableau/determinism
   audits. *)

module Pauli = Helpers.Pauli
module Pauli_string = Helpers.Pauli_string
module Clifford2q = Helpers.Clifford2q
module Bsf = Helpers.Bsf
module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Topology = Phoenix_topology.Topology
module Sabre = Phoenix_router.Sabre
module Compiler = Phoenix.Compiler
module Structural = Phoenix_verify.Structural
module Finding = Phoenix_analysis.Finding
module Circuit_lint = Phoenix_analysis.Circuit_lint
module Tableau_audit = Phoenix_analysis.Tableau_audit
module Determinism = Phoenix_analysis.Determinism
module Registry = Phoenix_analysis.Registry
module Cache = Phoenix_cache.Cache
module Cache_audit = Phoenix_analysis.Cache_audit

(* Exercise the PHOENIX_BSF_AUDIT debug mode for the whole binary:
   every tableau mutation in these tests self-audits. *)
let () = Unix.putenv "PHOENIX_BSF_AUDIT" "1"

let ps = Pauli_string.of_string

let heisenberg n = Phoenix_ham.Spin_models.heisenberg_chain n

let lint ?isa ?topology ?declared c =
  Registry.run (Circuit_lint.target ?isa ?topology ?declared c)

let check_no_errors msg findings =
  Alcotest.(check (list string))
    msg []
    (List.map Finding.to_string (Finding.errors findings))

let declared_of (r : Compiler.report) =
  {
    Circuit_lint.two_q = r.Compiler.two_q_count;
    depth_2q = r.Compiler.depth_2q;
    one_q = r.Compiler.one_q_count;
  }

(* --- clean lints over real compilations --------------------------------- *)

let test_phoenix_logical_clean () =
  let h = heisenberg 6 in
  List.iter
    (fun (isa, lint_isa, tag) ->
      let options = { Compiler.default_options with isa } in
      let r = Compiler.compile ~options h in
      check_no_errors tag
        (lint ~isa:lint_isa ~declared:(declared_of r) r.Compiler.circuit))
    [
      Compiler.Cnot_isa, Circuit_lint.Cnot_basis, "cnot isa";
      Compiler.Su4_isa, Circuit_lint.Su4_basis, "su4 isa";
    ]

let test_phoenix_routed_clean () =
  let topo = Topology.line 8 in
  let options =
    { Compiler.default_options with target = Compiler.Hardware topo }
  in
  let r = Compiler.compile ~options (heisenberg 8) in
  check_no_errors "routed phoenix"
    (lint ~isa:Circuit_lint.Cnot_basis ~topology:topo
       ~declared:(declared_of r) r.Compiler.circuit)

let test_baselines_clean () =
  let h = heisenberg 8 in
  let n = 8 in
  let gadgets = Phoenix_ham.Hamiltonian.trotter_gadgets h in
  let topo = Topology.line n in
  let logical =
    [
      "tket", Phoenix_baselines.Tket_like.compile n gadgets;
      "paulihedral", Phoenix_baselines.Paulihedral_like.compile n gadgets;
      "tetris", Phoenix_baselines.Tetris_like.compile n gadgets;
      "naive", Phoenix_baselines.Naive.compile n gadgets;
    ]
  in
  List.iter
    (fun (name, c) ->
      check_no_errors (name ^ " logical")
        (lint ~isa:Circuit_lint.Cnot_basis c);
      let routed = Sabre.route_with_refinement topo c in
      let final =
        Phoenix_circuit.Peephole.optimize
          (Phoenix_circuit.Rebase.to_cnot_basis routed.Sabre.circuit)
      in
      check_no_errors (name ^ " routed")
        (lint ~isa:Circuit_lint.Cnot_basis ~topology:topo final))
    logical;
  let r = Phoenix_baselines.Qan2_like.compile topo n gadgets in
  check_no_errors "2qan routed"
    (lint ~isa:Circuit_lint.Cnot_basis ~topology:topo
       r.Phoenix_baselines.Qan2_like.circuit)

(* --- fault injection: circuit-level analyses ---------------------------- *)

let compiled_heisenberg () =
  let r = Compiler.compile (heisenberg 6) in
  r.Compiler.circuit, declared_of r

let test_catches_out_of_isa_gate () =
  let c, declared = compiled_heisenberg () in
  let bad =
    Circuit.append c
      (Gate.Rpp { p0 = Pauli.X; p1 = Pauli.Z; a = 0; b = 1; theta = 0.4 })
  in
  let findings = lint ~isa:Circuit_lint.Cnot_basis ~declared bad in
  Alcotest.(check bool)
    "isa violation flagged" true
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.analysis = "isa-conformance"
         && f.Finding.severity = Finding.Error)
       findings);
  (* the appended 2Q gate also breaks the declared metrics *)
  Alcotest.(check bool)
    "metrics drift flagged" true
    (List.exists
       (fun (f : Finding.t) -> f.Finding.analysis = "metrics-certification")
       (Finding.errors findings))

(* Delete one SWAP and relabel everything after it through the
   transposition it implemented — the classic stale-layout addresser
   bug.  The circuit still "reads" fine gate by gate; only coupling
   conformance can see the damage. *)
let drop_swap_with_stale_layout c =
  let arr = Circuit.gate_array c in
  let n = Circuit.num_qubits c in
  let idx =
    let found = ref None in
    Array.iteri
      (fun i g ->
        match g, !found with Gate.Swap _, None -> found := Some i | _ -> ())
      arr;
    !found
  in
  match idx with
  | None -> None
  | Some i ->
    let a, b =
      match arr.(i) with Gate.Swap (a, b) -> a, b | _ -> assert false
    in
    let relabel q = if q = a then b else if q = b then a else q in
    let prefix = Array.to_list (Array.sub arr 0 i) in
    let suffix = Array.to_list (Array.sub arr (i + 1) (Array.length arr - i - 1)) in
    Some
      (Circuit.concat (Circuit.create n prefix)
         (Circuit.map_qubits relabel (Circuit.create n suffix)))

let test_catches_dropped_swap () =
  (* Deterministic core case: line 0-1-2-3; dropping the SWAP(1,2) and
     relabelling leaves CNOT(1,3), which is off the coupling graph. *)
  let topo = Topology.line 4 in
  let c =
    Circuit.create 4 [ Gate.Cnot (0, 1); Gate.Swap (1, 2); Gate.Cnot (2, 3) ]
  in
  check_no_errors "valid before" (lint ~topology:topo c);
  (match drop_swap_with_stale_layout c with
  | None -> Alcotest.fail "no swap found"
  | Some bad ->
    Alcotest.(check bool)
      "stale layout flagged" true
      (List.exists
         (fun (f : Finding.t) -> f.Finding.analysis = "coupling-conformance")
         (Finding.errors (lint ~topology:topo bad))));
  (* And on a genuinely routed circuit: CNOT(0,3) on a line forces SABRE
     to insert at least one SWAP. *)
  let logical =
    Circuit.create 4
      [ Gate.Cnot (0, 3); Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (0, 3) ]
  in
  let routed = (Sabre.route_with_refinement topo logical).Sabre.circuit in
  check_no_errors "routed valid" (lint ~topology:topo routed);
  match drop_swap_with_stale_layout routed with
  | None -> Alcotest.fail "routing inserted no swap"
  | Some bad ->
    Alcotest.(check bool)
      "dropped swap flagged" true
      (Finding.has_errors (lint ~topology:topo bad))

let test_catches_nan_angle () =
  let c, _ = compiled_heisenberg () in
  let bad = Circuit.append c (Gate.G1 (Gate.Rz Float.nan, 0)) in
  Alcotest.(check bool)
    "nan flagged as error" true
    (List.exists
       (fun (f : Finding.t) -> f.Finding.analysis = "angle-sanity")
       (Finding.errors (lint ~isa:Circuit_lint.Cnot_basis bad)))

let test_zero_angle_is_warning_only () =
  let c, _ = compiled_heisenberg () in
  let sloppy = Circuit.append c (Gate.G1 (Gate.Rz 0.0, 0)) in
  let findings = lint ~isa:Circuit_lint.Cnot_basis sloppy in
  Alcotest.(check bool) "no errors" false (Finding.has_errors findings);
  Alcotest.(check bool)
    "missed optimization warned" true
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.analysis = "angle-sanity"
         && f.Finding.severity = Finding.Warning)
       findings)

let test_catches_metrics_drift () =
  let c, declared = compiled_heisenberg () in
  let wrong = { declared with Circuit_lint.two_q = declared.Circuit_lint.two_q + 1 } in
  Alcotest.(check bool)
    "drift flagged" true
    (List.exists
       (fun (f : Finding.t) -> f.Finding.analysis = "metrics-certification")
       (Finding.errors (lint ~declared:wrong c)))

let test_catches_dangling_qubit () =
  let c, _ = compiled_heisenberg () in
  let padded = Circuit.with_num_qubits (Circuit.num_qubits c + 1) c in
  let findings = lint padded in
  Alcotest.(check bool) "warning only" false (Finding.has_errors findings);
  Alcotest.(check bool)
    "dangling wire warned" true
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.analysis = "liveness"
         && f.Finding.location = Finding.Qubit (Circuit.num_qubits c))
       findings);
  (* idle physical qubits are normal on hardware targets *)
  Alcotest.(check int)
    "hardware targets exempt" 0
    (List.length
       (List.filter
          (fun (f : Finding.t) -> f.Finding.analysis = "liveness")
          (lint ~topology:(Topology.line 8) padded)))

let test_registry_selection () =
  let c, _ = compiled_heisenberg () in
  let bad = Circuit.append c (Gate.G1 (Gate.Rz Float.nan, 0)) in
  let only = lint ~isa:Circuit_lint.Cnot_basis bad in
  ignore only;
  let subset =
    Registry.run ~only:[ "liveness" ]
      (Circuit_lint.target ~isa:Circuit_lint.Cnot_basis bad)
  in
  Alcotest.(check bool) "nan invisible to liveness" false
    (Finding.has_errors subset);
  Alcotest.check_raises "unknown analysis"
    (Invalid_argument "Registry.run: unknown analyses: no-such-pass")
    (fun () ->
      ignore
        (Registry.run ~only:[ "no-such-pass" ] (Circuit_lint.target bad)))

(* --- tableau audits ------------------------------------------------------ *)

let random_conjugated_bsf =
  let open QCheck2.Gen in
  let* terms = Helpers.terms_gen 4 6 in
  let* gates = list_size (int_range 0 8) (Helpers.clifford2q_gen 4) in
  return (terms, gates)

let build_bsf n terms gates =
  let t = Bsf.of_terms n terms in
  List.iter (Bsf.apply_clifford2q t) gates;
  t

let prop_audit_clean =
  Helpers.qtest ~count:100 "caches stay consistent under conjugation"
    random_conjugated_bsf
    (fun (terms, gates) ->
      let t = build_bsf 4 terms gates in
      Bsf.audit t = []
      && Tableau_audit.cache_audit t = []
      && Tableau_audit.replay_audit ~n:4 ~terms ~gates t = [])

let fixed_bsf () =
  let terms = [ ps "XYZI", 0.3; ps "ZZII", 0.5; ps "IXXY", 0.7 ] in
  let gates = [ Clifford2q.make Clifford2q.CXX 0 1; Clifford2q.make Clifford2q.CZZ 2 3 ] in
  terms, gates, build_bsf 4 terms gates

let test_catches_corrupt_column_count () =
  let _, _, t = fixed_bsf () in
  Bsf.Testing.corrupt_column_count t 1;
  let findings = Tableau_audit.cache_audit t in
  Alcotest.(check bool) "caught" true (Finding.has_errors findings)

let test_catches_stale_row_weight () =
  let _, _, t = fixed_bsf () in
  Bsf.Testing.corrupt_row_weight t 0;
  Alcotest.(check bool)
    "caught" true
    (Finding.has_errors (Tableau_audit.cache_audit t))

let test_catches_corrupt_nonlocal_count () =
  let _, _, t = fixed_bsf () in
  Bsf.Testing.corrupt_nonlocal_count t;
  Alcotest.(check bool)
    "caught" true
    (Finding.has_errors (Tableau_audit.cache_audit t))

let test_replay_catches_sign_flip () =
  let terms, gates, t = fixed_bsf () in
  check_no_errors "clean before"
    (Tableau_audit.replay_audit ~n:4 ~terms ~gates t);
  Bsf.Testing.corrupt_sign t 1;
  (* invisible to the cache audit, which cannot derive signs... *)
  Alcotest.(check (list string))
    "cache audit blind to signs" []
    (List.map Finding.to_string (Tableau_audit.cache_audit t));
  (* ...but the replay oracle pins it to the row *)
  let findings = Tableau_audit.replay_audit ~n:4 ~terms ~gates t in
  Alcotest.(check bool)
    "caught at row 1" true
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.severity = Finding.Error && f.Finding.location = Finding.Row 1)
       findings)

let test_debug_audit_mode_traps_mutators () =
  (* PHOENIX_BSF_AUDIT=1 is set binary-wide above: a corrupted cache must
     make the very next mutator raise. *)
  let _, _, t = fixed_bsf () in
  Bsf.Testing.corrupt_column_count t 0;
  match Bsf.apply_h t 0 with
  | () -> Alcotest.fail "debug audit did not trip"
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "names the audit" true
      (String.length msg > 0
      && String.sub msg 0 (min 9 (String.length msg)) = "Bsf cache")

(* --- parallel determinism audit ------------------------------------------ *)

let test_determinism_audit_clean () =
  let gadgets =
    Phoenix_ham.Hamiltonian.trotter_gadgets (heisenberg 6)
  in
  let findings = Determinism.audit_gadgets 6 gadgets in
  check_no_errors "deterministic" findings;
  Alcotest.(check int) "single certification" 1 (List.length findings);
  Alcotest.(check bool)
    "info severity" true
    (match findings with
    | [ f ] -> f.Finding.severity = Finding.Info
    | _ -> false)

(* --- persistent cache audit ---------------------------------------------- *)

let string_contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  at 0

let audit_dir_counter = ref 0

(* A private, freshly populated persistent cache per test: compile a small
   Hamiltonian with the disk tier so real entries land in the directory. *)
let with_populated_cache f =
  incr audit_dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "phoenix-audit-%d-%d" (Unix.getpid ())
         !audit_dir_counter)
  in
  Unix.mkdir d 0o755;
  Unix.putenv "PHOENIX_CACHE_DIR" d;
  Fun.protect
    ~finally:(fun () ->
      ignore (Cache.Persist.clear ~dir:d ());
      (try Unix.rmdir d with Sys_error _ | Unix.Unix_error _ -> ()))
    (fun () ->
      Cache.clear_memory ();
      let options = { Compiler.default_options with cache = Cache.Disk } in
      ignore (Compiler.compile ~options (heisenberg 6));
      f d)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let test_cache_audit_clean () =
  with_populated_cache (fun d ->
      let files = Cache.Persist.list_files ~dir:d () in
      Alcotest.(check bool) "entries persisted" true (List.length files > 0);
      let findings = Cache_audit.run ~dir:d () in
      check_no_errors "clean cache" findings;
      match findings with
      | [ f ] -> Alcotest.(check bool)
          "single info certification" true
          (f.Finding.severity = Finding.Info)
      | _ -> Alcotest.fail "expected exactly one finding")

let test_cache_audit_catches_corruption () =
  with_populated_cache (fun d ->
      let file = List.hd (Cache.Persist.list_files ~dir:d ()) in
      let bytes = read_all file in
      let b = Bytes.of_string bytes in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x40));
      write_all file (Bytes.to_string b);
      let findings = Cache_audit.run ~dir:d () in
      Alcotest.(check bool) "has errors" true (Finding.has_errors findings);
      Alcotest.(check bool)
        "names the corrupt entry" true
        (List.exists
           (fun (f : Finding.t) ->
             f.Finding.severity = Finding.Error
             && string_contains f.Finding.message "corrupt cache entry")
           findings))

let test_cache_audit_catches_address_mismatch () =
  with_populated_cache (fun d ->
      let file = List.hd (Cache.Persist.list_files ~dir:d ()) in
      let base = Filename.basename file in
      (* Re-address the entry under a digest it does not hash to. *)
      let flipped =
        String.mapi
          (fun i c -> if i = 0 then (if c = '0' then '1' else '0') else c)
          base
      in
      Sys.rename file (Filename.concat d flipped);
      let findings = Cache_audit.run ~dir:d () in
      Alcotest.(check bool) "has errors" true (Finding.has_errors findings);
      Alcotest.(check bool)
        "reports the digest mismatch" true
        (List.exists
           (fun (f : Finding.t) ->
             f.Finding.severity = Finding.Error
             && string_contains f.Finding.message
                  "does not match fingerprint digest")
           findings))

(* --- finding rendering --------------------------------------------------- *)

let test_finding_json () =
  let f =
    Finding.error ~location:(Finding.Gate 3) ~analysis:"isa-conformance"
      "bad \"gate\""
  in
  Alcotest.(check string)
    "json object"
    "{\"analysis\":\"isa-conformance\",\"severity\":\"error\",\"location\":{\"kind\":\"gate\",\"index\":3},\"message\":\"bad \\\"gate\\\"\"}"
    (Finding.to_json f);
  Alcotest.(check string) "empty list" "[]" (Finding.list_to_json []);
  Alcotest.(check string)
    "summary" "1 error, 0 warnings, 0 notes"
    (Finding.summary [ f ])

let () =
  Alcotest.run "analysis"
    [
      ( "clean",
        [
          Alcotest.test_case "phoenix logical" `Quick test_phoenix_logical_clean;
          Alcotest.test_case "phoenix routed" `Quick test_phoenix_routed_clean;
          Alcotest.test_case "all baselines" `Quick test_baselines_clean;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "out-of-ISA gate" `Quick test_catches_out_of_isa_gate;
          Alcotest.test_case "dropped SWAP" `Quick test_catches_dropped_swap;
          Alcotest.test_case "NaN angle" `Quick test_catches_nan_angle;
          Alcotest.test_case "zero angle warns" `Quick
            test_zero_angle_is_warning_only;
          Alcotest.test_case "metrics drift" `Quick test_catches_metrics_drift;
          Alcotest.test_case "dangling qubit" `Quick test_catches_dangling_qubit;
          Alcotest.test_case "registry selection" `Quick test_registry_selection;
        ] );
      ( "tableau",
        [
          prop_audit_clean;
          Alcotest.test_case "corrupt column count" `Quick
            test_catches_corrupt_column_count;
          Alcotest.test_case "stale row weight" `Quick
            test_catches_stale_row_weight;
          Alcotest.test_case "corrupt nonlocal count" `Quick
            test_catches_corrupt_nonlocal_count;
          Alcotest.test_case "sign flip via replay" `Quick
            test_replay_catches_sign_flip;
          Alcotest.test_case "debug audit traps mutators" `Quick
            test_debug_audit_mode_traps_mutators;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel replays identical" `Quick
            test_determinism_audit_clean;
        ] );
      ( "cache",
        [
          Alcotest.test_case "clean persistent cache" `Quick
            test_cache_audit_clean;
          Alcotest.test_case "corrupt entry" `Quick
            test_cache_audit_catches_corruption;
          Alcotest.test_case "address mismatch" `Quick
            test_cache_audit_catches_address_mismatch;
        ] );
      ( "rendering",
        [ Alcotest.test_case "json + summary" `Quick test_finding_json ] );
    ]
