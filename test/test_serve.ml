(* The serve daemon, proven correct by a soak/differential battery:

   - soak: 200+ concurrent mixed jobs through a live daemon (shared
     synthesis cache, worker-domain pool) must be bit-identical —
     circuit digests and the semantic report subset — to serial
     [Handler.execute] runs of the same specs;
   - protocol fault injection: malformed/truncated/oversized frames,
     unknown pipelines/workloads, mid-request disconnects, and seeded
     chaos worker faults must produce structured error responses (or
     fail closed bit-identically), never a crash or a malformed frame;
   - a qcheck property: the by-id response semantics are independent of
     submission order and worker count — the completion-order freedom
     the wire protocol grants is unobservable in the answers. *)

module Serve = Phoenix_serve.Serve
module Client = Phoenix_serve.Serve.Client
module Json = Phoenix_serve.Json
module Protocol = Phoenix_serve.Protocol
module Handler = Phoenix_serve.Handler
module Jobqueue = Phoenix_serve.Jobqueue
module Workload = Phoenix_serve.Workload
module Chaos = Phoenix_util.Chaos

(* --- helpers ------------------------------------------------------------ *)

let temp_socket () =
  let path = Filename.temp_file "phxsrv" ".sock" in
  Sys.remove path;
  path

let boot ?(workers = 4) ?(max_queue = 512) ?max_request_bytes () =
  let path = temp_socket () in
  let base = Serve.default_config (Serve.Unix_socket path) in
  let config =
    {
      base with
      Serve.workers;
      max_queue;
      max_request_bytes =
        Option.value max_request_bytes ~default:base.Serve.max_request_bytes;
    }
  in
  (Serve.start config, Serve.Unix_socket path)

let with_server ?workers ?max_queue ?max_request_bytes f =
  let t, addr = boot ?workers ?max_queue ?max_request_bytes () in
  Fun.protect ~finally:(fun () -> Serve.drain t) (fun () -> f addr)

let field k j = Option.value (Json.mem k j) ~default:Json.Null
let status_of j = Option.value (Json.int (field "status" j)) ~default:(-1)
let id_of j = Option.value (Json.str (field "id" j)) ~default:"?"

(* The semantic subset the differential battery compares: status, error,
   circuit digests, metrics, diagnostics, findings, degradations — but
   not wall times, per-pass seconds, or cache counters (the shared cache
   makes per-run counter deltas concurrency-dependent by design). *)
let semantics resp =
  let report = field "report" resp in
  Json.to_string
    (Json.Obj
       [
         ("status", field "status" resp);
         ("kind", field "kind" resp);
         ("error", field "error" resp);
         ("circuit", field "circuit" resp);
         ("binds", field "binds" resp);
         ("params", field "params" resp);
         ("diagnostics", field "diagnostics" resp);
         ("findings", field "findings" resp);
         ("two_q", field "two_q" report);
         ("one_q", field "one_q" report);
         ("depth_2q", field "depth_2q" report);
         ("swaps", field "swaps" report);
         ("groups", field "groups" report);
         ("degradations", field "degradations" report);
       ])

(* Serial reference: same spec through the same execution path, no
   transport, no concurrency. *)
let reference_response fields =
  let req = Json.to_string (Json.Obj fields) in
  match Protocol.parse_request req with
  | Ok (Protocol.Compile { spec; _ }) ->
    Handler.response ~id:Json.Null (Handler.execute spec)
  | Ok _ -> Alcotest.fail "reference request is not a compile"
  | Error (_, msg) ->
    Protocol.error_response ~id:Json.Null ~status:Protocol.Sbad_request msg

(* Send [jobs] (id -> request fields) across [conns] connections
   round-robin, with one collector thread per connection; returns the
   responses keyed by id. *)
let run_jobs addr ~conns jobs =
  let cs = Array.init conns (fun _ -> Client.connect addr) in
  let results = Hashtbl.create (List.length jobs) in
  let rm = Mutex.create () in
  let collectors =
    Array.map
      (fun c ->
        Thread.create
          (fun () ->
            let rec loop () =
              match Client.recv c with
              | Some resp ->
                Mutex.lock rm;
                Hashtbl.replace results (id_of resp) resp;
                Mutex.unlock rm;
                loop ()
              | None -> ()
            in
            loop ())
          ())
      cs
  in
  List.iteri
    (fun i (id, fields) ->
      Client.send cs.(i mod conns)
        (Json.Obj (("id", Json.Str id) :: fields)))
    jobs;
  Array.iter Client.shutdown_send cs;
  Array.iter Thread.join collectors;
  Array.iter Client.close cs;
  results

(* --- the mixed workload ------------------------------------------------- *)

let w k v = (k, Json.Str v)
let b k v = (k, Json.Bool v)

let inline_ham = "0.5 XXI\n0.25 IYZ\n-0.75 ZZZ\n0.1 ZII"

let qasm_text =
  "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx \
   q[0],q[1];\nrz(0.25) q[2];\nrz(-0.25) q[2];\ncx q[0],q[1];\nh q[2];\n"

(* Every spec disables the gate dump: the digest plus the metric fields
   already pin the circuit bit-for-bit, at a fraction of the bytes. *)
let mixed_specs =
  let nodump = b "dump" false in
  [
    ("uccsd", [ w "workload" "uccsd:LiH_frz_JW"; nodump ]);
    ("qaoa", [ w "workload" "qaoa:Reg3-16"; nodump ]);
    ("hubbard", [ w "workload" "fermi-hubbard:2x2"; nodump ]);
    ("heis-tket", [ w "workload" "heisenberg:6"; w "pipeline" "tket"; nodump ]);
    ( "tfim-paulihedral",
      [ w "workload" "tfim:6"; w "pipeline" "paulihedral"; nodump ] );
    ( "heis-tetris",
      [ w "workload" "heisenberg:5"; w "pipeline" "tetris"; nodump ] );
    ("tfim-naive", [ w "workload" "tfim:5"; w "pipeline" "naive"; nodump ]);
    ( "heis-2qan",
      [
        w "workload" "heisenberg:6"; w "pipeline" "2qan"; w "topology" "line";
        nodump;
      ] );
    ("qaoa-su4", [ w "workload" "qaoa:Reg3-16"; w "isa" "su4"; nodump ]);
    ("heis-ring", [ w "workload" "heisenberg:6"; w "topology" "ring"; nodump ]);
    ("tfim-nocache", [ w "workload" "tfim:6"; w "cache" "off"; nodump ]);
    ("inline", [ w "hamiltonian" inline_ham; nodump ]);
    ("qasm", [ w "qasm" qasm_text; nodump ]);
    (* qaoa:Reg3-16 has 24 parameters (one per ZZ edge gadget) *)
    ( "template",
      [
        w "workload" "qaoa:Reg3-16";
        b "template" true;
        ( "binds",
          Json.Arr
            [
              Json.Arr (List.init 24 (fun i -> Json.Num (0.1 *. float_of_int i)));
              Json.Arr (List.init 24 (fun _ -> Json.Num 1.0));
            ] );
        nodump;
      ] );
    ("verify", [ w "workload" "heisenberg:4"; b "verify" true; nodump ]);
    ("lint", [ w "workload" "tfim:4"; b "lint" true; nodump ]);
  ]

(* --- soak --------------------------------------------------------------- *)

let test_soak () =
  let reps = 13 in
  (* 16 specs x 13 reps = 208 jobs *)
  let jobs =
    List.concat_map
      (fun r ->
        List.map
          (fun (name, fields) -> (Printf.sprintf "%s#%d" name r, fields))
          mixed_specs)
      (List.init reps (fun r -> r))
  in
  Alcotest.(check bool) "at least 200 jobs" true (List.length jobs >= 200);
  let expected =
    List.map
      (fun (name, fields) ->
        let reference = reference_response fields in
        (* every mixed spec is a valid job: a reference that rejects
           would make the differential vacuous for that spec *)
        Alcotest.(check int)
          (name ^ " reference compiles clean") 0 (status_of reference);
        (name, semantics reference))
      mixed_specs
  in
  with_server ~workers:4 (fun addr ->
      let results = run_jobs addr ~conns:8 jobs in
      Alcotest.(check int)
        "every job answered" (List.length jobs) (Hashtbl.length results);
      List.iter
        (fun (id, _) ->
          let name = List.hd (String.split_on_char '#' id) in
          let want = List.assoc name expected in
          match Hashtbl.find_opt results id with
          | None -> Alcotest.failf "no response for %s" id
          | Some resp ->
            Alcotest.(check string)
              (Printf.sprintf "%s == serial reference" id)
              want (semantics resp))
        jobs;
      (* stats must account for exactly these worker jobs *)
      let c = Client.connect addr in
      Client.send c (Json.Obj [ ("op", Json.Str "stats"); ("id", Json.Str "s") ]);
      (match Client.recv c with
      | None -> Alcotest.fail "no stats response"
      | Some resp ->
        let stats = field "stats" resp in
        Alcotest.(check (option int))
          "jobs_served" (Some (List.length jobs))
          (Json.int (field "jobs_served" stats));
        Alcotest.(check (option int))
          "queue drained" (Some 0)
          (Json.int (field "depth" (field "queue" stats))));
      Client.close c)

(* Same spec, same digest, whatever the cache tier: a shared-cache hit
   replays bit-identically to a cold synthesis, so tier "off" and tier
   "mem" jobs racing the same daemon agree gate for gate. *)
let test_cache_tiers_agree () =
  with_server ~workers:4 (fun addr ->
      let jobs =
        List.concat_map
          (fun r ->
            [
              ( Printf.sprintf "mem#%d" r,
                [ w "workload" "heisenberg:6"; b "dump" true ] );
              ( Printf.sprintf "off#%d" r,
                [ w "workload" "heisenberg:6"; w "cache" "off"; b "dump" true ]
              );
            ])
          (List.init 6 (fun r -> r))
      in
      let results = run_jobs addr ~conns:4 jobs in
      let gates_of id =
        match Hashtbl.find_opt results id with
        | None -> Alcotest.failf "no response for %s" id
        | Some resp -> Json.to_string (field "circuit" resp)
      in
      let reference = gates_of "mem#0" in
      List.iter
        (fun (id, _) ->
          Alcotest.(check string) (id ^ " agrees") reference (gates_of id))
        jobs)

(* --- protocol fault injection ------------------------------------------- *)

let test_malformed_lines () =
  with_server ~workers:1 (fun addr ->
      let c = Client.connect addr in
      let expect name want =
        match Client.recv c with
        | None -> Alcotest.failf "%s: connection closed" name
        | Some resp -> Alcotest.(check int) name want (status_of resp)
      in
      Client.send_line c "this is not json";
      expect "garbage" 2;
      Client.send_line c "{\"id\": 1, \"workload\": \"tfim:3\"";
      expect "unterminated object" 2;
      Client.send_line c "[1,2,3]";
      expect "non-object request" 2;
      Client.send_line c "{\"id\":\"x\",\"op\":\"transmogrify\"}";
      expect "unknown op" 2;
      Client.send_line c "{\"id\":\"x\",\"workload\":42}";
      expect "non-string workload" 2;
      Client.send_line c "{\"id\":\"x\"}";
      expect "no source" 2;
      Client.send_line c
        "{\"id\":\"x\",\"workload\":\"tfim:3\",\"qasm\":\"q\"}";
      expect "two sources" 2;
      Client.send_line c
        "{\"id\":\"x\",\"workload\":\"tfim:3\",\"pipeline\":\"nope\"}";
      expect "unknown pipeline" 2;
      Client.send_line c "{\"id\":\"x\",\"workload\":\"wat:9\"}";
      expect "unknown workload" 2;
      Client.send_line c
        "{\"id\":\"x\",\"workload\":\"tfim:3\",\"isa\":\"xy\"}";
      expect "unknown isa" 2;
      Client.send_line c
        "{\"id\":\"x\",\"workload\":\"tfim:3\",\"topology\":\"moebius\"}";
      expect "unknown topology" 2;
      Client.send_line c
        "{\"id\":\"x\",\"workload\":\"tfim:3\",\"bind\":[0.5]}";
      expect "bind without template" 2;
      Client.send_line c
        "{\"id\":\"x\",\"workload\":\"tfim:3\",\"budget_checks\":0}";
      expect "zero budget_checks" 2;
      Client.send_line c "{\"id\":\"x\",\"hamiltonian\":\"not a term\"}";
      expect "bad inline hamiltonian" 2;
      Client.send_line c "{\"id\":\"x\",\"qasm\":\"h q[0];\"}";
      expect "bad qasm" 2;
      (* the connection survived all of it *)
      Client.send c (Json.Obj [ ("op", Json.Str "ping"); ("id", Json.Str "p") ]);
      expect "still serving" 0;
      Client.close c)

let test_error_id_echo () =
  with_server ~workers:1 (fun addr ->
      let c = Client.connect addr in
      Client.send_line c "{\"id\":\"echo-me\",\"workload\":\"wat:9\"}";
      (match Client.recv c with
      | None -> Alcotest.fail "connection closed"
      | Some resp ->
        Alcotest.(check string) "id echoed" "echo-me" (id_of resp);
        Alcotest.(check int) "bad request" 2 (status_of resp);
        (match field "error" resp with
        | Json.Obj _ as e ->
          Alcotest.(check (option string))
            "structured severity" (Some "error")
            (Json.str (field "severity" e))
        | _ -> Alcotest.fail "error is not structured"));
      Client.close c)

let test_truncated_frame () =
  with_server ~workers:1 (fun addr ->
      (* a frame cut mid-JSON with no newline is not a request: the
         daemon sees EOF mid-line, drops it, and keeps serving *)
      let c1 = Client.connect addr in
      Client.send_raw c1 "{\"id\":\"t\",\"workload\":\"tfim";
      Client.shutdown_send c1;
      Alcotest.(check bool) "no response for truncation" true
        (Client.recv c1 = None);
      Client.close c1;
      let c2 = Client.connect addr in
      Client.send c2 (Json.Obj [ ("op", Json.Str "ping"); ("id", Json.Str "p") ]);
      (match Client.recv c2 with
      | Some resp -> Alcotest.(check int) "daemon alive" 0 (status_of resp)
      | None -> Alcotest.fail "daemon died after truncated frame");
      Client.close c2)

let test_oversized_payload () =
  with_server ~workers:1 ~max_request_bytes:4096 (fun addr ->
      let c = Client.connect addr in
      Client.send_line c
        (Printf.sprintf "{\"id\":\"big\",\"qasm\":\"%s\"}"
           (String.make 8192 'x'));
      (match Client.recv c with
      | None -> Alcotest.fail "no oversize response"
      | Some resp ->
        Alcotest.(check int) "oversize is a bad request" 2 (status_of resp));
      (* the connection is dropped afterwards: NDJSON cannot resync *)
      Alcotest.(check bool) "connection closed" true (Client.recv c = None);
      Client.close c;
      let c2 = Client.connect addr in
      Client.send c2 (Json.Obj [ ("op", Json.Str "ping"); ("id", Json.Str "p") ]);
      (match Client.recv c2 with
      | Some resp -> Alcotest.(check int) "daemon alive" 0 (status_of resp)
      | None -> Alcotest.fail "daemon died after oversized frame");
      Client.close c2)

let test_disconnect_mid_job () =
  with_server ~workers:2 (fun addr ->
      (* enqueue real jobs, then vanish before the answers come back:
         the workers must absorb the dead socket (EPIPE) and the daemon
         must keep serving others *)
      let c = Client.connect addr in
      for i = 1 to 5 do
        Client.send c
          (Json.Obj
             [
               ("id", Json.Str (Printf.sprintf "gone-%d" i));
               w "workload" "qaoa:Reg3-16";
               b "dump" false;
             ])
      done;
      Client.close c;
      let c2 = Client.connect addr in
      let rec settle tries =
        Client.send c2
          (Json.Obj [ ("op", Json.Str "stats"); ("id", Json.Str "s") ]);
        match Client.recv c2 with
        | None -> Alcotest.fail "daemon died after client disconnect"
        | Some resp ->
          let served =
            Option.value
              (Json.int (field "jobs_served" (field "stats" resp)))
              ~default:0
          in
          if served >= 5 then ()
          else if tries = 0 then
            Alcotest.failf "only %d/5 abandoned jobs served" served
          else begin
            Thread.delay 0.05;
            settle (tries - 1)
          end
      in
      settle 200;
      Client.send c2
        (Json.Obj
           [ ("id", Json.Str "ok"); w "workload" "tfim:4"; b "dump" false ]);
      (match Client.recv c2 with
      | Some resp -> Alcotest.(check int) "still compiling" 0 (status_of resp)
      | None -> Alcotest.fail "daemon died after client disconnect");
      Client.close c2)

let test_backpressure () =
  with_server ~workers:1 ~max_queue:1 (fun addr ->
      let c = Client.connect addr in
      (* one slow job to occupy the single worker, then a burst: the
         queue holds one, the rest must be refused with status 6 *)
      for i = 0 to 11 do
        Client.send c
          (Json.Obj
             [
               ("id", Json.Str (Printf.sprintf "burst-%d" i));
               w "workload" "qaoa:Reg3-16";
               b "dump" false;
             ])
      done;
      Client.shutdown_send c;
      let statuses = ref [] in
      let rec collect () =
        match Client.recv c with
        | Some resp ->
          statuses := status_of resp :: !statuses;
          collect ()
        | None -> ()
      in
      collect ();
      Client.close c;
      Alcotest.(check int) "every request answered" 12 (List.length !statuses);
      let refused = List.length (List.filter (( = ) 6) !statuses) in
      let served = List.length (List.filter (( = ) 0) !statuses) in
      Alcotest.(check int) "refused + served = all" 12 (refused + served);
      Alcotest.(check bool) "backpressure engaged" true (refused > 0);
      Alcotest.(check bool) "still made progress" true (served > 0))

(* Seeded chaos worker faults inside the daemon: every response must
   still be a well-formed frame, and each job either completes
   bit-identically to the clean reference or fails closed with a
   structured pass error — nothing in between, and the daemon outlives
   all of it. *)
let test_chaos_worker_faults () =
  let fields =
    [ w "workload" "qaoa:Reg3-16"; ("domains", Json.Num 2.0); b "dump" false ]
  in
  let clean = semantics (reference_response fields) in
  let plan =
    match Chaos.parse "seed=1913,worker=0.35,alloc=0.2" with
    | Ok p -> p
    | Error e -> Alcotest.failf "chaos plan: %s" e
  in
  Fun.protect
    ~finally:(fun () -> Chaos.set_plan None)
    (fun () ->
      Chaos.set_plan (Some plan);
      with_server ~workers:2 (fun addr ->
          let jobs =
            List.init 30 (fun i -> (Printf.sprintf "chaos-%d" i, fields))
          in
          let results = run_jobs addr ~conns:3 jobs in
          Alcotest.(check int) "every chaos job answered" 30
            (Hashtbl.length results);
          let outcomes =
            List.map
              (fun (id, _) ->
                match Hashtbl.find_opt results id with
                | None -> Alcotest.failf "no response for %s" id
                | Some resp -> (id, resp))
              jobs
          in
          List.iter
            (fun (id, resp) ->
              match status_of resp with
              | 0 ->
                Alcotest.(check string)
                  (id ^ " identical to clean reference")
                  clean (semantics resp)
              | 1 -> (
                match field "error" resp with
                | Json.Obj _ -> ()
                | _ -> Alcotest.failf "%s failed without a structured error" id)
              | s -> Alcotest.failf "%s: unexpected status %d" id s)
            outcomes))

(* Budget isolation: a job carrying a deterministic expiry budget must
   never interrupt its neighbours — the ambient budget stack is
   domain-local, so a clean job racing a budget_checks job on the other
   worker stays bit-identical to its serial reference.  (This soak
   caught a real bug: a process-global stack let one job's budget fire
   inside another job's synthesis.) *)
let test_budget_isolation () =
  let clean_fields = [ w "workload" "qaoa:Reg3-16"; b "template" true; b "dump" false ] in
  let clean = semantics (reference_response clean_fields) in
  let budget_fields =
    [
      w "workload" "uccsd:LiH_frz_JW";
      w "topology" "heavy-hex";
      ("budget_checks", Json.Num 2.0);
      w "cache" "off";
      b "dump" false;
    ]
  in
  with_server ~workers:2 (fun addr ->
      let jobs =
        List.concat_map
          (fun r ->
            [
              (Printf.sprintf "budget#%d" r, budget_fields);
              (Printf.sprintf "clean#%d" r, clean_fields);
            ])
          (List.init 8 (fun r -> r))
      in
      let results = run_jobs addr ~conns:2 jobs in
      List.iter
        (fun (id, _) ->
          match Hashtbl.find_opt results id with
          | None -> Alcotest.failf "no response for %s" id
          | Some resp ->
            if String.length id >= 5 && String.sub id 0 5 = "clean" then
              Alcotest.(check string)
                (id ^ " untouched by the neighbour's budget")
                clean (semantics resp)
            else
              Alcotest.(check int)
                (id ^ " hit its own deadline") 5 (status_of resp))
        jobs)

(* --- ordering independence (qcheck) ------------------------------------- *)

(* The job set quantifies over every response class: clean compiles
   through different pipelines, a deterministic budget expiry
   (budget_checks + cache off, so checkpoint counts cannot depend on
   shared-cache hits), and a bad request. *)
let ordering_jobs =
  [
    ("a", [ w "workload" "heisenberg:4"; b "dump" false ]);
    ("b", [ w "workload" "tfim:4"; w "pipeline" "tket"; b "dump" false ]);
    ("c", [ w "workload" "tfim:4"; w "pipeline" "naive"; b "dump" false ]);
    ("d", [ w "hamiltonian" inline_ham; b "dump" false ]);
    ("e", [ w "workload" "heisenberg:4"; w "topology" "line"; b "dump" false ]);
    ( "f",
      [
        w "workload" "heisenberg:4";
        w "cache" "off";
        ("budget_checks", Json.Num 3.0);
        b "dump" false;
      ] );
    ("g", [ w "workload" "wat:9" ]);
    ("h", [ w "qasm" qasm_text; b "dump" false ]);
  ]

let ordering_reference =
  lazy
    (List.map
       (fun (id, fields) -> (id, semantics (reference_response fields)))
       ordering_jobs)

let shuffle seed xs =
  let st = Random.State.make [| seed |] in
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let prop_ordering_independence =
  Helpers.qtest ~count:12 "response semantics independent of interleaving"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, workers) ->
      let jobs = shuffle seed ordering_jobs in
      let results =
        with_server ~workers (fun addr ->
            run_jobs addr ~conns:(1 + (seed mod 3)) jobs)
      in
      List.for_all
        (fun (id, want) ->
          match Hashtbl.find_opt results id with
          | None -> false
          | Some resp -> String.equal want (semantics resp))
        (Lazy.force ordering_reference))

(* --- jobqueue ----------------------------------------------------------- *)

let test_jobqueue_bounds () =
  let q = Jobqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Jobqueue.push q 1 = `Ok);
  Alcotest.(check bool) "push 2" true (Jobqueue.push q 2 = `Ok);
  Alcotest.(check bool) "push 3 refused" true (Jobqueue.push q 3 = `Full);
  Alcotest.(check int) "depth" 2 (Jobqueue.length q);
  Alcotest.(check bool) "pop 1" true (Jobqueue.pop q = Some 1);
  Alcotest.(check bool) "push 4 fits again" true (Jobqueue.push q 4 = `Ok);
  Jobqueue.close q;
  Alcotest.(check bool) "push after close" true (Jobqueue.push q 5 = `Closed);
  Alcotest.(check bool) "drain 2" true (Jobqueue.pop q = Some 2);
  Alcotest.(check bool) "drain 4" true (Jobqueue.pop q = Some 4);
  Alcotest.(check bool) "drained" true (Jobqueue.pop q = None);
  Alcotest.(check bool) "idempotent close" true
    (Jobqueue.close q;
     Jobqueue.pop q = None);
  Alcotest.check_raises "capacity >= 1" (Invalid_argument
     "Jobqueue.create: capacity must be >= 1") (fun () ->
      ignore (Jobqueue.create ~capacity:0))

let test_jobqueue_mpmc () =
  let q = Jobqueue.create ~capacity:1024 in
  let total = 400 in
  let producers =
    List.init 4 (fun p ->
        Thread.create
          (fun () ->
            for i = 0 to (total / 4) - 1 do
              let rec retry () =
                match Jobqueue.push q ((p * 1000) + i) with
                | `Ok -> ()
                | `Full ->
                  Thread.yield ();
                  retry ()
                | `Closed -> Alcotest.fail "closed while producing"
              in
              retry ()
            done)
          ())
  in
  let popped = Array.make 4 [] in
  let consumers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rec loop acc =
              match Jobqueue.pop q with
              | Some x -> loop (x :: acc)
              | None -> popped.(d) <- acc
            in
            loop []))
  in
  List.iter Thread.join producers;
  Jobqueue.close q;
  List.iter Domain.join consumers;
  let all = List.concat (Array.to_list popped) in
  Alcotest.(check int) "every item consumed once" total (List.length all);
  Alcotest.(check int) "no duplicates" total
    (List.length (List.sort_uniq compare all))

(* --- protocol parsing --------------------------------------------------- *)

let parse_ok line =
  match Protocol.parse_request line with
  | Ok r -> r
  | Error (_, msg) -> Alcotest.failf "parse %S: %s" line msg

let test_request_defaults () =
  match parse_ok "{\"workload\":\"tfim:3\"}" with
  | Protocol.Compile { spec; _ } ->
    Alcotest.(check string) "default pipeline" "phoenix" spec.Protocol.pipeline;
    Alcotest.(check string) "default topology" "all-to-all"
      spec.Protocol.topology;
    Alcotest.(check bool) "default dump" true spec.Protocol.dump;
    Alcotest.(check bool) "default cache mem" true
      (spec.Protocol.cache = Phoenix_cache.Cache.Mem);
    Alcotest.(check int) "default domains" 1 spec.Protocol.domains
  | _ -> Alcotest.fail "not a compile"

let test_request_id_recovery () =
  match Protocol.parse_request "{\"id\":77,\"workload\":\"wat:9\",\"isa\":\"z\"}"
  with
  | Error (id, _) ->
    Alcotest.(check (option int)) "id recovered from bad request" (Some 77)
      (Json.int id)
  | Ok _ -> Alcotest.fail "expected a parse rejection"

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "[1,2.5,-3,\"x\"]";
      "{\"a\":{\"b\":[{}]},\"c\":\"\"}";
      "\"\\u00e9\\n\\\"\\\\\"";
      "1e-3";
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok v -> (
        match Json.parse (Json.to_string v) with
        | Error e -> Alcotest.failf "reparse %S: %s" (Json.to_string v) e
        | Ok v' ->
          Alcotest.(check string) ("roundtrip " ^ s) (Json.to_string v)
            (Json.to_string v')))
    cases;
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %S" s)
    [ "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{1:2}" ]

(* --- self test ---------------------------------------------------------- *)

let test_self_test () =
  Alcotest.(check bool) "self-test passes" true (Serve.self_test ~workers:2 ())

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip + rejects" `Quick test_json_roundtrip;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "defaults" `Quick test_request_defaults;
          Alcotest.test_case "id recovery" `Quick test_request_id_recovery;
        ] );
      ( "jobqueue",
        [
          Alcotest.test_case "bounds and drain" `Quick test_jobqueue_bounds;
          Alcotest.test_case "mpmc stress" `Quick test_jobqueue_mpmc;
        ] );
      ( "soak",
        [
          Alcotest.test_case "208 concurrent jobs == serial" `Slow test_soak;
          Alcotest.test_case "cache tiers agree" `Quick test_cache_tiers_agree;
        ] );
      ( "faults",
        [
          Alcotest.test_case "malformed lines" `Quick test_malformed_lines;
          Alcotest.test_case "error id echo" `Quick test_error_id_echo;
          Alcotest.test_case "truncated frame" `Quick test_truncated_frame;
          Alcotest.test_case "oversized payload" `Quick test_oversized_payload;
          Alcotest.test_case "disconnect mid-job" `Quick test_disconnect_mid_job;
          Alcotest.test_case "backpressure" `Quick test_backpressure;
          Alcotest.test_case "chaos worker faults" `Slow
            test_chaos_worker_faults;
          Alcotest.test_case "budget isolation across workers" `Quick
            test_budget_isolation;
        ] );
      ("ordering", [ prop_ordering_independence ]);
      ( "daemon",
        [ Alcotest.test_case "self-test" `Quick test_self_test ] );
    ]
