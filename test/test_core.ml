(* PHOENIX core: grouping, Algorithm-1 simplification, synthesis,
   Tetris-like ordering, and the full compiler pipeline. *)

module Pauli_string = Helpers.Pauli_string
module Bsf = Helpers.Bsf
module Circuit = Helpers.Circuit
module Gate = Helpers.Gate
module Unitary = Helpers.Unitary
module Group = Phoenix.Group
module Simplify = Phoenix.Simplify
module Synthesis = Phoenix.Synthesis
module Order = Phoenix.Order
module Compiler = Phoenix.Compiler
module Rebase = Phoenix_circuit.Rebase
module Peephole = Phoenix_circuit.Peephole
module Topology = Phoenix_topology.Topology

let ps = Pauli_string.of_string

(* --- grouping --- *)

let test_grouping_by_support () =
  let gadgets =
    [ ps "XXI", 0.1; ps "IZZ", 0.2; ps "YYI", 0.3; ps "ZIZ", 0.4 ]
  in
  let groups = Group.group_gadgets 3 gadgets in
  Alcotest.(check int) "three groups" 3 (List.length groups);
  (* first group holds both terms on {0,1}, in program order *)
  match groups with
  | g :: _ ->
    Alcotest.(check int) "two terms" 2 (List.length g.Group.terms);
    Alcotest.(check int) "weight" 2 (Group.weight g)
  | [] -> Alcotest.fail "no groups"

let test_grouping_drops_identity () =
  let groups = Group.group_gadgets 2 [ ps "II", 0.5; ps "XX", 0.1 ] in
  Alcotest.(check int) "identity dropped" 1 (List.length groups)

let test_grouping_exact_order () =
  (* XX / ZI / XX: merging the second XX into the first group would move
     it past the anticommuting ZI.  Greedy grouping does (it is only
     Trotter-equivalent); exact grouping must not. *)
  let gadgets = [ ps "XX", 0.1; ps "ZI", 0.2; ps "XX", 0.3 ] in
  Alcotest.(check int) "greedy merges" 2
    (List.length (Group.group_gadgets 2 gadgets));
  Alcotest.(check int) "exact keeps order" 3
    (List.length (Group.group_gadgets ~exact:true 2 gadgets));
  (* commuting interleaving still merges in exact mode *)
  let gadgets' = [ ps "XX", 0.1; ps "IZ", 0.2; ps "ZI", 0.25; ps "XX", 0.3 ] in
  Alcotest.(check int) "exact grouping is inexact-free, not timid" 4
    (List.length (Group.group_gadgets ~exact:true 2 gadgets'));
  let commuting = [ ps "ZZ", 0.1; ps "ZI", 0.2; ps "ZZ", 0.3 ] in
  Alcotest.(check int) "exact merges across commuting groups" 2
    (List.length (Group.group_gadgets ~exact:true 2 commuting))

let test_of_blocks () =
  let blocks = [ [ ps "XXI", 0.1; ps "IZZ", 0.2 ]; []; [ ps "YII", 0.3 ] ] in
  let groups = Group.of_blocks 3 blocks in
  Alcotest.(check int) "two groups (empty dropped)" 2 (List.length groups);
  match groups with
  | g :: _ ->
    Alcotest.(check int) "union support" 3 (Group.weight g)
  | [] -> Alcotest.fail "no groups"

let test_all_commuting () =
  let commuting = Group.of_blocks 2 [ [ ps "XX", 0.1; ps "YY", 0.2 ] ] in
  let anti = Group.of_blocks 2 [ [ ps "XX", 0.1; ps "ZI", 0.2 ] ] in
  (match commuting, anti with
  | [ c ], [ a ] ->
    Alcotest.(check bool) "commuting" true (Group.all_commuting c);
    Alcotest.(check bool) "anticommuting" false (Group.all_commuting a)
  | _ -> Alcotest.fail "unexpected grouping")

(* --- simplification: structure and invariants --- *)

let test_simplify_terminates_weight2 () =
  let cfg = Simplify.run 3 [ ps "XXI", 0.3 ] in
  (* already weight ≤ 2: no cliffords needed *)
  Alcotest.(check int) "no cliffords" 0 (Simplify.num_cliffords cfg);
  Alcotest.(check int) "core has the term" 1 (List.length (Simplify.core_terms cfg))

let test_simplify_fig1b () =
  let strings = [ "ZYY"; "ZZY"; "XYY"; "XZY" ] in
  let cfg = Simplify.run 3 (List.map (fun s -> ps s, 0.5) strings) in
  let core = Simplify.core_terms cfg in
  List.iter
    (fun (p, _) ->
      Alcotest.(check bool) "core weight ≤ 2" true (Pauli_string.weight p <= 2))
    core;
  (* Fig. 1(b): one Clifford conjugation suffices *)
  Alcotest.(check bool) "few cliffords" true (Simplify.num_cliffords cfg <= 4)

let angles_multiset cfg =
  let collect = function
    | Simplify.Cliff _ -> []
    | Simplify.Rotations rs | Simplify.Core rs ->
      List.map (fun (_, a) -> Float.abs a) rs
  in
  List.sort compare (List.concat_map collect cfg)

let prop_simplify_preserves_angles =
  Helpers.qtest ~count:80 "simplification preserves |angle| multiset"
    (Helpers.terms_gen 4 6)
    (fun terms ->
      let cfg = Simplify.run 4 terms in
      angles_multiset cfg
      = List.sort compare (List.map (fun (_, a) -> Float.abs a) terms))

let prop_simplify_core_weight =
  Helpers.qtest ~count:80 "core total weight ≤ 2 (or all rows local)"
    (Helpers.terms_gen 5 6)
    (fun terms ->
      let cfg = Simplify.run 5 terms in
      let core = Simplify.core_terms cfg in
      let bsf = Phoenix_pauli.Bsf.of_terms 5 core in
      Bsf.total_weight bsf <= 2 || Bsf.nonlocal_count bsf = 0)

(* The crown jewel: exact-mode simplification + synthesis is unitarily
   equivalent to the gadget product. *)
let prop_simplify_exact_unitary =
  Helpers.qtest ~count:60 "exact simplify+synthesis ≡ gadget product"
    (Helpers.terms_gen 3 5)
    (fun terms ->
      let cfg = Simplify.run ~exact:true 3 terms in
      let circ = Synthesis.cfg_to_circuit 3 cfg in
      Helpers.unitary_equiv ~tol:1e-7
        (Unitary.program_unitary 3 terms)
        (Unitary.circuit_unitary circ))

let prop_simplify_commuting_default_unitary =
  (* With pairwise-commuting input, peeling is exact even by default. *)
  Helpers.qtest ~count:60 "commuting groups: default mode is exact"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 5)
       (QCheck2.Gen.pair
          (QCheck2.Gen.oneofl
             [ ps "ZZI"; ps "IZZ"; ps "ZIZ"; ps "ZII"; ps "IZI" ])
          Helpers.angle_gen))
    (fun terms ->
      let cfg = Simplify.run 3 terms in
      let circ = Synthesis.cfg_to_circuit 3 cfg in
      Helpers.unitary_equiv ~tol:1e-7
        (Unitary.program_unitary 3 terms)
        (Unitary.circuit_unitary circ))

(* --- synthesis --- *)

let test_rotation_gates () =
  let gates = Synthesis.rotation_gates [ ps "IXI", 0.2; ps "ZIY", 0.4 ] in
  (match gates with
  | [ Gate.G1 (Gate.Rx t, 1); Gate.Rpp { a = 0; b = 2; theta; _ } ] ->
    Alcotest.(check (float 1e-12)) "rx angle" 0.2 t;
    Alcotest.(check (float 1e-12)) "rpp angle" 0.4 theta
  | _ -> Alcotest.fail "unexpected gates");
  Alcotest.check_raises "weight 3 rejected"
    (Invalid_argument "Synthesis.rotation_gates: weight > 2 gadget") (fun () ->
      ignore (Synthesis.rotation_gates [ ps "XYZ", 0.1 ]))

let prop_naive_circuit_unitary =
  Helpers.qtest ~count:60 "naive ladder synthesis ≡ gadget product"
    (Helpers.terms_gen 3 4)
    (fun terms ->
      Helpers.unitary_equiv ~tol:1e-7
        (Unitary.program_unitary 3 terms)
        (Unitary.circuit_unitary (Synthesis.naive_gadget_circuit 3 terms)))

let prop_naive_zfirst_unitary =
  Helpers.qtest ~count:60 "Z-first ladder synthesis ≡ gadget product"
    (Helpers.terms_gen 3 4)
    (fun terms ->
      Helpers.unitary_equiv ~tol:1e-7
        (Unitary.program_unitary 3 terms)
        (Unitary.circuit_unitary
           (Synthesis.naive_gadget_circuit ~chain:`Z_first 3 terms)))

(* --- ordering --- *)

let block_of terms n =
  match Group.of_blocks n [ terms ] with
  | [ g ] -> { Order.group = g; circuit = Synthesis.group_circuit g }
  | _ -> Alcotest.fail "expected one group"

let test_order_keeps_all_blocks () =
  let blocks =
    [
      block_of [ ps "XXII", 0.1 ] 4;
      block_of [ ps "IIZZ", 0.2 ] 4;
      block_of [ ps "ZZZZ", 0.3 ] 4;
    ]
  in
  let ordered = Order.order blocks in
  Alcotest.(check int) "same count" 3 (List.length ordered);
  (* widest first *)
  match ordered with
  | first :: _ ->
    Alcotest.(check int) "widest first" 4 (Group.weight first.Order.group)
  | [] -> Alcotest.fail "empty"

let test_exposed_cliffords () =
  let c = Phoenix_pauli.Clifford2q.make Phoenix_pauli.Clifford2q.CXY 0 1 in
  let circ =
    Circuit.create 3
      [ Gate.Cliff2 c; Gate.Rpp { p0 = Phoenix_pauli.Pauli.Z; p1 = Phoenix_pauli.Pauli.Z; a = 0; b = 1; theta = 0.5 } ]
  in
  Alcotest.(check int) "leading exposed" 1
    (List.length (Order.exposed_boundary_cliffords `Leading circ));
  Alcotest.(check int) "trailing shadowed" 0
    (List.length (Order.exposed_boundary_cliffords `Trailing circ))

let test_assembly_cost_rewards_cancellation () =
  let c = Phoenix_pauli.Clifford2q.make Phoenix_pauli.Clifford2q.CZZ 0 1 in
  let zz = Gate.Rpp { p0 = Phoenix_pauli.Pauli.Z; p1 = Phoenix_pauli.Pauli.Z; a = 0; b = 1; theta = 0.5 } in
  let with_cliff = Circuit.create 2 [ Gate.Cliff2 c; zz; Gate.Cliff2 c ] in
  let plain = Circuit.create 2 [ zz; zz; zz ] in
  let g = match Group.of_blocks 2 [ [ ps "XX", 0.1 ] ] with [ g ] -> g | _ -> assert false in
  let b_cliff = { Order.group = g; circuit = with_cliff } in
  let b_plain = { Order.group = g; circuit = plain } in
  let cost_cancel = Order.assembly_cost b_cliff b_cliff in
  let cost_plain = Order.assembly_cost b_plain b_plain in
  Alcotest.(check bool) "cancellation cheaper" true (cost_cancel < cost_plain)

(* --- compiler pipeline --- *)

let heisenberg4 = Phoenix_ham.Spin_models.heisenberg_chain 4

let test_compile_logical_cnot () =
  let r = Compiler.compile heisenberg4 in
  Alcotest.(check bool) "has 2q gates" true (r.Compiler.two_q_count > 0);
  Alcotest.(check bool) "depth ≤ count" true
    (r.Compiler.depth_2q <= r.Compiler.two_q_count);
  Alcotest.(check int) "no swaps" 0 r.Compiler.num_swaps;
  (* CNOT basis: every 2Q gate is a CNOT *)
  List.iter
    (fun g ->
      match g with
      | Gate.Cnot _ | Gate.G1 _ -> ()
      | _ -> Alcotest.fail "non-basis gate in CNOT ISA output")
    (Circuit.gates r.Compiler.circuit)

let test_compile_exact_unitary () =
  let options = { Compiler.default_options with exact = true } in
  let r = Compiler.compile ~options heisenberg4 in
  let reference =
    Unitary.program_unitary 4 (Phoenix_ham.Hamiltonian.trotter_gadgets heisenberg4)
  in
  Helpers.check_equiv ~tol:1e-7 "pipeline output equivalent" reference
    (Unitary.circuit_unitary r.Compiler.circuit)

let test_compile_su4 () =
  let options = { Compiler.default_options with isa = Compiler.Su4_isa } in
  let r = Compiler.compile ~options heisenberg4 in
  List.iter
    (fun g ->
      match g with
      | Gate.Su4 _ | Gate.G1 _ -> ()
      | _ -> Alcotest.fail "non-SU4 2Q gate in SU(4) ISA output")
    (Circuit.gates r.Compiler.circuit);
  (* SU(4) count never exceeds CNOT count *)
  let r_cnot = Compiler.compile heisenberg4 in
  Alcotest.(check bool) "su4 ≤ cnot" true
    (r.Compiler.two_q_count <= r_cnot.Compiler.two_q_count)

let test_compile_hardware () =
  let topo = Topology.line 4 in
  let options = { Compiler.default_options with target = Compiler.Hardware topo } in
  let r = Compiler.compile ~options heisenberg4 in
  List.iter
    (fun g ->
      match Gate.pair g with
      | Some (a, b) -> Alcotest.(check bool) "adjacency" true (Topology.are_adjacent topo a b)
      | None -> ())
    (Circuit.gates r.Compiler.circuit)

let test_compile_hardware_unitary () =
  (* exact mode + routing on a line: permuted-unitary equivalence *)
  let topo = Topology.line 4 in
  let options =
    { Compiler.default_options with target = Compiler.Hardware topo; exact = true }
  in
  let r = Compiler.compile ~options heisenberg4 in
  (* The routed circuit acts on 4 physical qubits; compare up to the output
     permutation by checking spectra-free metric: the routed circuit must
     implement the logical unitary up to a qubit permutation.  We verify by
     brute force over all 4! permutations. *)
  let logical =
    Unitary.program_unitary 4 (Phoenix_ham.Hamiltonian.trotter_gadgets heisenberg4)
  in
  let routed = Unitary.circuit_unitary r.Compiler.circuit in
  (* SABRE refines the input layout and relabels outputs:
     U_routed = P_out · U_logical · P_in for some qubit permutations. *)
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x ->
          List.map (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y <> x) xs)))
        xs
  in
  let dim = 16 in
  let perm_matrix perm =
    let m = Helpers.Cmat.create dim dim in
    for basis = 0 to dim - 1 do
      let image = ref 0 in
      List.iteri
        (fun l p ->
          let bit = (basis lsr (3 - l)) land 1 in
          if bit = 1 then image := !image lor (1 lsl (3 - p)))
        perm;
      Helpers.Cmat.set m !image basis Complex.one
    done;
    m
  in
  let perms = List.map perm_matrix (permutations [ 0; 1; 2; 3 ]) in
  let ok =
    List.exists
      (fun p_out ->
        let lhs = Helpers.Cmat.mul p_out logical in
        List.exists
          (fun p_in ->
            Helpers.unitary_equiv ~tol:1e-6 routed (Helpers.Cmat.mul lhs p_in))
          perms)
      perms
  in
  Alcotest.(check bool) "routed ≡ permuted logical" true ok

let test_compiler_beats_naive_on_uccsd () =
  let b = Phoenix_ham.Molecules.find "LiH_frz_JW" in
  let ham = Phoenix_ham.Uccsd.ansatz b.Phoenix_ham.Molecules.encoding b.Phoenix_ham.Molecules.spec in
  let gadgets = Phoenix_ham.Hamiltonian.trotter_gadgets ham in
  let naive = Synthesis.naive_gadget_circuit 10 gadgets in
  let r = Compiler.compile ham in
  Alcotest.(check bool) "at least 2x better" true
    (r.Compiler.two_q_count * 2 < Circuit.count_cnot naive)

let () =
  Alcotest.run "core"
    [
      ( "group",
        [
          Alcotest.test_case "by support" `Quick test_grouping_by_support;
          Alcotest.test_case "drops identity" `Quick test_grouping_drops_identity;
          Alcotest.test_case "exact order preservation" `Quick
            test_grouping_exact_order;
          Alcotest.test_case "of blocks" `Quick test_of_blocks;
          Alcotest.test_case "all commuting" `Quick test_all_commuting;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "weight-2 input" `Quick test_simplify_terminates_weight2;
          Alcotest.test_case "Fig. 1(b)" `Quick test_simplify_fig1b;
          prop_simplify_preserves_angles;
          prop_simplify_core_weight;
          prop_simplify_exact_unitary;
          prop_simplify_commuting_default_unitary;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "rotation gates" `Quick test_rotation_gates;
          prop_naive_circuit_unitary;
          prop_naive_zfirst_unitary;
        ] );
      ( "order",
        [
          Alcotest.test_case "keeps all blocks" `Quick test_order_keeps_all_blocks;
          Alcotest.test_case "exposed cliffords" `Quick test_exposed_cliffords;
          Alcotest.test_case "rewards cancellation" `Quick
            test_assembly_cost_rewards_cancellation;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "logical CNOT" `Quick test_compile_logical_cnot;
          Alcotest.test_case "exact unitary" `Quick test_compile_exact_unitary;
          Alcotest.test_case "SU4 ISA" `Quick test_compile_su4;
          Alcotest.test_case "hardware adjacency" `Quick test_compile_hardware;
          Alcotest.test_case "hardware unitary" `Quick test_compile_hardware_unitary;
          Alcotest.test_case "beats naive on UCCSD" `Slow
            test_compiler_beats_naive_on_uccsd;
        ] );
    ]
