(* Differential suite for the flat-arena BSF tableau.

   A deliberately naive reference implementation — one bool array per
   row half, textbook stabilizer sign rules, O(R²) pairwise cost, a
   direct transcription of the commuting-only peel fixpoint — is driven
   through the same random mutator sequences as the arena tableau.  Any
   divergence in rows, signs, cost, extracted terms, or digests flags a
   bug in the arena's word-packed fast paths or its incremental
   counters. *)

open Helpers
module Angle = Phoenix_pauli.Angle

let n = 5

(* --- the row-based reference ------------------------------------------ *)

type rrow = {
  x : bool array;
  z : bool array;
  mutable rneg : bool;
  rangle : float;
}

type rt = rrow array

let ref_of_terms terms : rt =
  Array.of_list
    (List.map
       (fun (p, angle) ->
         {
           x = Array.init n (fun q -> fst (Pauli.to_bits (Pauli_string.get p q)));
           z = Array.init n (fun q -> snd (Pauli.to_bits (Pauli_string.get p q)));
           rneg = false;
           rangle = angle;
         })
       terms)

(* Textbook conjugation rules, derived independently of lib/pauli/bsf.ml:
   H swaps X and Z (Y picks up a sign); S sends X to Y and Y to -X;
   S† sends Y to X and X to -Y; CNOT copies X forward and Z backward,
   with a sign iff the row restricted to (a,b) is XZ·(something
   anticommuting), i.e. x_a ∧ z_b ∧ (x_b = z_a). *)
let ref_h (t : rt) q =
  Array.iter
    (fun r ->
      if r.x.(q) && r.z.(q) then r.rneg <- not r.rneg;
      let xq = r.x.(q) in
      r.x.(q) <- r.z.(q);
      r.z.(q) <- xq)
    t

let ref_s (t : rt) q =
  Array.iter
    (fun r ->
      if r.x.(q) && r.z.(q) then r.rneg <- not r.rneg;
      r.z.(q) <- r.z.(q) <> r.x.(q))
    t

let ref_sdg (t : rt) q =
  Array.iter
    (fun r ->
      if r.x.(q) && not r.z.(q) then r.rneg <- not r.rneg;
      r.z.(q) <- r.z.(q) <> r.x.(q))
    t

let ref_cnot (t : rt) a b =
  Array.iter
    (fun r ->
      if r.x.(a) && r.z.(b) && Bool.equal r.x.(b) r.z.(a) then
        r.rneg <- not r.rneg;
      r.x.(b) <- r.x.(b) <> r.x.(a);
      r.z.(a) <- r.z.(a) <> r.z.(b))
    t

let ref_basis_gate t = function
  | Clifford2q.H q -> ref_h t q
  | Clifford2q.S q -> ref_s t q
  | Clifford2q.Sdg q -> ref_sdg t q
  | Clifford2q.Cnot (a, b) -> ref_cnot t a b

let ref_clifford2q t gate =
  List.iter (ref_basis_gate t) (Clifford2q.decompose gate)

let ref_pauli (r : rrow) =
  Pauli_string.of_list
    (List.init n (fun q -> Pauli.of_bits ~x:r.x.(q) ~z:r.z.(q)))

let ref_weight (r : rrow) =
  let w = ref 0 in
  for q = 0 to n - 1 do
    if r.x.(q) || r.z.(q) then incr w
  done;
  !w

let ref_commutes (r1 : rrow) (r2 : rrow) =
  let sym = ref false in
  for q = 0 to n - 1 do
    if (r1.x.(q) && r2.z.(q)) <> (r2.x.(q) && r1.z.(q)) then sym := not !sym
  done;
  not !sym

(* Eq. 6 by the definition: pairwise union supports, no incremental
   counters, no closed forms. *)
let ref_cost (t : rt) =
  let rows = Array.length t in
  let union_card f g =
    let c = ref 0 in
    for q = 0 to n - 1 do
      if f q || g q then incr c
    done;
    !c
  in
  let w_tot =
    union_card
      (fun q -> Array.exists (fun r -> r.x.(q) || r.z.(q)) t)
      (fun _ -> false)
  in
  let n_nl =
    Array.fold_left (fun acc r -> if ref_weight r > 1 then acc + 1 else acc) 0 t
  in
  let sup = ref 0 and xs = ref 0 and zs = ref 0 in
  for i = 0 to rows - 1 do
    for j = i + 1 to rows - 1 do
      let ri = t.(i) and rj = t.(j) in
      sup :=
        !sup
        + union_card
            (fun q -> ri.x.(q) || ri.z.(q))
            (fun q -> rj.x.(q) || rj.z.(q));
      xs := !xs + union_card (fun q -> ri.x.(q)) (fun q -> rj.x.(q));
      zs := !zs + union_card (fun q -> ri.z.(q)) (fun q -> rj.z.(q))
    done
  done;
  (float_of_int (w_tot * n_nl * n_nl)
  +. float_of_int !sup
  +. (0.5 *. float_of_int (!xs + !zs)))

(* The commuting-only peel, transcribed from the .mli contract: a local
   (weight ≤ 1) row may only leave if it commutes with every row that
   stays behind.  Locals that anticommute with a survivor are demoted to
   stayers themselves, which can strand further locals — iterate to a
   fixpoint.  Peeled rows keep program order. *)
let ref_pop_local ~commuting_only (t : rt) =
  let rows = Array.length t in
  let local = Array.init rows (fun i -> ref_weight t.(i) <= 1) in
  if commuting_only then begin
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to rows - 1 do
        if local.(i) then
          for j = 0 to rows - 1 do
            if (not local.(j)) && not (ref_commutes t.(i) t.(j)) then begin
              local.(i) <- false;
              changed := true
            end
          done
      done
    done
  end;
  let peeled = ref [] and kept = ref [] in
  for i = rows - 1 downto 0 do
    if local.(i) then peeled := t.(i) :: !peeled else kept := t.(i) :: !kept
  done;
  (!peeled, Array.of_list !kept)

(* --- random mutator sequences ----------------------------------------- *)

type op =
  | OpH of int
  | OpS of int
  | OpSdg of int
  | OpCnot of int * int
  | OpC2 of Clifford2q.t

let op_gen =
  let open QCheck2.Gen in
  let q = int_range 0 (n - 1) in
  let distinct_pair =
    let* a = q in
    let* b = int_range 0 (n - 2) in
    return (a, if b >= a then b + 1 else b)
  in
  oneof
    [
      map (fun q -> OpH q) q;
      map (fun q -> OpS q) q;
      map (fun q -> OpSdg q) q;
      map (fun (a, b) -> OpCnot (a, b)) distinct_pair;
      map (fun g -> OpC2 g) (clifford2q_gen n);
    ]

let scenario_gen =
  QCheck2.Gen.pair (terms_gen n 8)
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 30) op_gen)

let apply_bsf t = function
  | OpH q -> Bsf.apply_h t q
  | OpS q -> Bsf.apply_s t q
  | OpSdg q -> Bsf.apply_sdg t q
  | OpCnot (a, b) -> Bsf.apply_cnot t a b
  | OpC2 g -> Bsf.apply_clifford2q t g

let apply_ref t = function
  | OpH q -> ref_h t q
  | OpS q -> ref_s t q
  | OpSdg q -> ref_sdg t q
  | OpCnot (a, b) -> ref_cnot t a b
  | OpC2 g -> ref_clifford2q t g

let build (terms, ops) =
  let t = Bsf.of_terms n terms in
  let r = ref_of_terms terms in
  List.iter (fun op -> apply_bsf t op; apply_ref r op) ops;
  (t, r)

let rows_match t (r : rt) =
  Bsf.num_rows t = Array.length r
  && List.for_all2
       (fun (row : Bsf.row) rr ->
         Pauli_string.equal row.Bsf.pauli (ref_pauli rr)
         && Bool.equal row.Bsf.neg rr.rneg
         && row.Bsf.angle = rr.rangle)
       (Bsf.rows t) (Array.to_list r)

(* --- properties -------------------------------------------------------- *)

let prop_rows =
  qtest ~count:300 "mutated rows match row-based reference" scenario_gen
    (fun sc ->
      let t, r = build sc in
      rows_match t r)

let prop_cost =
  qtest ~count:300 "cost matches O(R^2) reference exactly" scenario_gen
    (fun sc ->
      let t, r = build sc in
      (* All-integer arithmetic on both sides: equality is exact. *)
      Bsf.cost t = ref_cost r && Bsf.cost_reference t = ref_cost r)

let prop_to_terms =
  qtest ~count:300 "to_terms folds signs into angles" scenario_gen
    (fun sc ->
      let t, r = build sc in
      let expected =
        Array.to_list
          (Array.map
             (fun rr ->
               ( ref_pauli rr,
                 if rr.rneg then Angle.neg rr.rangle else rr.rangle ))
             r)
      in
      List.for_all2
        (fun (p, a) (p', a') -> Pauli_string.equal p p' && a = a')
        (Bsf.to_terms t) expected)

let prop_digest_copy =
  qtest ~count:300 "canonical digest survives copy and views" scenario_gen
    (fun sc ->
      let t, _ = build sc in
      let d = Bsf.canonical_digest t in
      let views = ref 0 in
      Bsf.iter_views t (fun _ -> incr views);
      d = Bsf.canonical_digest (Bsf.copy t)
      && !views = Bsf.num_rows t
      && d = Bsf.digest_of_canonical_form (Bsf.canonical_form t))

let check_pop ~commuting_only sc =
  let t, r = build sc in
  let peeled = Bsf.pop_local_rows ~commuting_only t in
  let rpeeled, rkept = ref_pop_local ~commuting_only r in
  List.length peeled = List.length rpeeled
  && List.for_all2
       (fun (row : Bsf.row) rr ->
         Pauli_string.equal row.Bsf.pauli (ref_pauli rr)
         && Bool.equal row.Bsf.neg rr.rneg
         && row.Bsf.angle = rr.rangle)
       peeled rpeeled
  && rows_match t rkept
  && Bsf.cost t = ref_cost rkept

let prop_pop_local =
  qtest ~count:300 "pop_local_rows matches reference peel" scenario_gen
    (check_pop ~commuting_only:false)

let prop_pop_local_commuting =
  qtest ~count:300 "commuting-only peel matches reference fixpoint"
    scenario_gen
    (check_pop ~commuting_only:true)

let prop_audit_clean =
  qtest ~count:300 "incremental counters audit clean after mutation"
    scenario_gen
    (fun sc ->
      let t, _ = build sc in
      Bsf.audit t = [])

let () =
  Alcotest.run "bsf-arena"
    [
      ( "differential",
        [
          prop_rows;
          prop_cost;
          prop_to_terms;
          prop_digest_copy;
          prop_pop_local;
          prop_pop_local_commuting;
          prop_audit_clean;
        ] );
    ]
