module Pauli = Helpers.Pauli
module Pauli_string = Helpers.Pauli_string
module Cmat = Helpers.Cmat
module Unitary = Helpers.Unitary

let all = [ Pauli.I; Pauli.X; Pauli.Y; Pauli.Z ]

let test_char_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "roundtrip" true
        (Pauli.equal p (Pauli.of_char (Pauli.to_char p))))
    all;
  Alcotest.(check bool) "lowercase" true (Pauli.equal Pauli.X (Pauli.of_char 'x'));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Pauli.of_char: expected one of I, X, Y, Z") (fun () ->
      ignore (Pauli.of_char 'Q'))

let test_bits_roundtrip () =
  List.iter
    (fun p ->
      let x, z = Pauli.to_bits p in
      Alcotest.(check bool) "bits roundtrip" true
        (Pauli.equal p (Pauli.of_bits ~x ~z)))
    all

let test_commutation_table () =
  (* X,Y,Z pairwise anticommute; I commutes with everything. *)
  let expect a b =
    Pauli.is_identity a || Pauli.is_identity b || Pauli.equal a b
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "[%c,%c]" (Pauli.to_char a) (Pauli.to_char b))
            (expect a b) (Pauli.commutes a b))
        all)
    all

(* Verify the single-qubit multiplication table against dense matrices. *)
let test_mul_vs_matrices () =
  let i_pow k =
    match k mod 4 with
    | 0 -> { Complex.re = 1.0; im = 0.0 }
    | 1 -> { Complex.re = 0.0; im = 1.0 }
    | 2 -> { Complex.re = -1.0; im = 0.0 }
    | _ -> { Complex.re = 0.0; im = -1.0 }
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let k, r = Pauli.mul a b in
          let lhs = Cmat.mul (Unitary.pauli_1q a) (Unitary.pauli_1q b) in
          let rhs = Cmat.scale (i_pow k) (Unitary.pauli_1q r) in
          Alcotest.(check bool)
            (Printf.sprintf "%c*%c" (Pauli.to_char a) (Pauli.to_char b))
            true (Cmat.is_close lhs rhs))
        all)
    all

let test_string_parse () =
  let p = Pauli_string.of_string "IXYZ" in
  Alcotest.(check int) "qubits" 4 (Pauli_string.num_qubits p);
  Alcotest.(check string) "roundtrip" "IXYZ" (Pauli_string.to_string p);
  Alcotest.(check int) "weight" 3 (Pauli_string.weight p);
  Alcotest.(check (list int)) "support" [ 1; 2; 3 ] (Pauli_string.support_list p)

let test_string_set_get () =
  let p = Pauli_string.identity 5 in
  let p' = Pauli_string.set p 2 Pauli.Y in
  Alcotest.(check bool) "original untouched" true (Pauli_string.is_identity p);
  Alcotest.(check string) "set" "IIYII" (Pauli_string.to_string p');
  Alcotest.(check string) "single" "IZII"
    (Pauli_string.to_string (Pauli_string.single 4 1 Pauli.Z))

let test_known_commutation () =
  let c a b =
    Pauli_string.commutes (Pauli_string.of_string a) (Pauli_string.of_string b)
  in
  (* ZYY vs XZY: differs anticommutingly at exactly two positions. *)
  Alcotest.(check bool) "ZYY ~ XZY" true (c "ZYY" "XZY");
  Alcotest.(check bool) "XX ~ ZZ" true (c "XX" "ZZ");
  Alcotest.(check bool) "XI !~ ZI" false (c "XI" "ZI");
  Alcotest.(check bool) "XYZ ~ XYZ" true (c "XYZ" "XYZ")

let prop_commutes_matches_matrices =
  Helpers.qtest ~count:200 "string commutation = matrix commutation"
    (QCheck2.Gen.pair (Helpers.pauli_string_gen 3) (Helpers.pauli_string_gen 3))
    (fun (p, q) ->
      let mp = Unitary.pauli_matrix p and mq = Unitary.pauli_matrix q in
      let pq = Cmat.mul mp mq and qp = Cmat.mul mq mp in
      Pauli_string.commutes p q = Cmat.is_close pq qp)

let prop_mul_matches_matrices =
  Helpers.qtest ~count:200 "string product = matrix product"
    (QCheck2.Gen.pair (Helpers.pauli_string_gen 3) (Helpers.pauli_string_gen 3))
    (fun (p, q) ->
      let k, r = Pauli_string.mul p q in
      let i_pow =
        match k mod 4 with
        | 0 -> { Complex.re = 1.0; im = 0.0 }
        | 1 -> { Complex.re = 0.0; im = 1.0 }
        | 2 -> { Complex.re = -1.0; im = 0.0 }
        | _ -> { Complex.re = 0.0; im = -1.0 }
      in
      Cmat.is_close
        (Cmat.mul (Unitary.pauli_matrix p) (Unitary.pauli_matrix q))
        (Cmat.scale i_pow (Unitary.pauli_matrix r)))

(* The word-parallel phase computation in Pauli_string.mul must agree
   with the per-qubit single-Pauli multiplication table, including far
   past the first backing word (150 qubits spans three words). *)
let prop_mul_matches_per_qubit =
  Helpers.qtest ~count:300 "word-parallel mul = per-qubit reference (150q)"
    (QCheck2.Gen.pair (Helpers.pauli_string_gen 150)
       (Helpers.pauli_string_gen 150))
    (fun (p, q) ->
      let k, r = Pauli_string.mul p q in
      let phase = ref 0 in
      let bits_ok = ref true in
      for i = 0 to 149 do
        let ki, ri = Pauli.mul (Pauli_string.get p i) (Pauli_string.get q i) in
        phase := !phase + ki;
        if not (Pauli.equal ri (Pauli_string.get r i)) then bits_ok := false
      done;
      !bits_ok && k = !phase mod 4)

let prop_weight_support =
  Helpers.qtest "weight equals support size" (Helpers.pauli_string_gen 8)
    (fun p -> Pauli_string.weight p = List.length (Pauli_string.support_list p))

let prop_self_commutes =
  Helpers.qtest "every string commutes with itself" (Helpers.pauli_string_gen 6)
    (fun p -> Pauli_string.commutes p p)

let () =
  Alcotest.run "pauli"
    [
      ( "pauli-1q",
        [
          Alcotest.test_case "char roundtrip" `Quick test_char_roundtrip;
          Alcotest.test_case "bits roundtrip" `Quick test_bits_roundtrip;
          Alcotest.test_case "commutation table" `Quick test_commutation_table;
          Alcotest.test_case "mul vs matrices" `Quick test_mul_vs_matrices;
        ] );
      ( "pauli-string",
        [
          Alcotest.test_case "parse" `Quick test_string_parse;
          Alcotest.test_case "set/get" `Quick test_string_set_get;
          Alcotest.test_case "known commutation" `Quick test_known_commutation;
        ] );
      ( "props",
        [
          prop_commutes_matches_matrices;
          prop_mul_matches_matrices;
          prop_mul_matches_per_qubit;
          prop_weight_support;
          prop_self_commutes;
        ] );
    ]
