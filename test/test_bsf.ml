(* The linchpin of the whole reproduction: the BSF tableau update rules
   must agree with dense-matrix Clifford conjugation, signs included. *)

module Pauli = Helpers.Pauli
module Pauli_string = Helpers.Pauli_string
module Clifford2q = Helpers.Clifford2q
module Bsf = Helpers.Bsf
module Cmat = Helpers.Cmat
module Unitary = Helpers.Unitary
module Gate = Helpers.Gate

let n = 3

let sign_matrix neg m =
  if neg then Cmat.scale { Complex.re = -1.0; im = 0.0 } m else m

(* Check  U · P · U†  =  ±P'  where (±, P') comes from the tableau. *)
let conjugation_agrees u p row =
  let lhs = Cmat.mul (Cmat.mul u (Unitary.pauli_matrix p)) (Cmat.dagger u) in
  let rhs = sign_matrix row.Bsf.neg (Unitary.pauli_matrix row.Bsf.pauli) in
  Cmat.is_close ~tol:1e-9 lhs rhs

let prim_unitary n g =
  let u = Cmat.identity (1 lsl n) in
  Unitary.apply_gate u n g;
  u

let run_prim bsf = function
  | Gate.G1 (Gate.H, q) -> Bsf.apply_h bsf q
  | Gate.G1 (Gate.S, q) -> Bsf.apply_s bsf q
  | Gate.G1 (Gate.Sdg, q) -> Bsf.apply_sdg bsf q
  | Gate.Cnot (a, b) -> Bsf.apply_cnot bsf a b
  | _ -> assert false

let prim_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun q -> Gate.G1 (Gate.H, q)) (int_range 0 (n - 1));
      map (fun q -> Gate.G1 (Gate.S, q)) (int_range 0 (n - 1));
      map (fun q -> Gate.G1 (Gate.Sdg, q)) (int_range 0 (n - 1));
      map
        (fun (a, d) ->
          let b = (a + 1 + d) mod n in
          Gate.Cnot (a, b))
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 2)));
    ]

let prop_primitives_match_matrices =
  Helpers.qtest ~count:500 "H/S/S†/CNOT tableau rules = dense conjugation"
    (QCheck2.Gen.pair prim_gen (Helpers.pauli_string_gen n))
    (fun (g, p) ->
      let bsf = Bsf.of_terms n [ p, 1.0 ] in
      run_prim bsf g;
      match Bsf.rows bsf with
      | [ row ] -> conjugation_agrees (prim_unitary n g) p row
      | _ -> false)

let prop_clifford2q_matches_matrices =
  Helpers.qtest ~count:500 "Clifford2Q generator rules = dense conjugation"
    (QCheck2.Gen.pair (Helpers.clifford2q_gen n) (Helpers.pauli_string_gen n))
    (fun (c, p) ->
      let bsf = Bsf.of_terms n [ p, 1.0 ] in
      Bsf.apply_clifford2q bsf c;
      match Bsf.rows bsf with
      | [ row ] -> conjugation_agrees (Helpers.clifford2q_unitary n c) p row
      | _ -> false)

let prop_clifford2q_involutive =
  Helpers.qtest ~count:200 "applying a generator twice is the identity"
    (QCheck2.Gen.pair (Helpers.clifford2q_gen n) (Helpers.pauli_string_gen n))
    (fun (c, p) ->
      let bsf = Bsf.of_terms n [ p, 1.0 ] in
      Bsf.apply_clifford2q bsf c;
      Bsf.apply_clifford2q bsf c;
      match Bsf.rows bsf with
      | [ row ] -> Pauli_string.equal row.Bsf.pauli p && not row.Bsf.neg
      | _ -> false)

let prop_conjugation_preserves_commutation =
  Helpers.qtest ~count:200 "conjugation preserves pairwise commutation"
    (QCheck2.Gen.triple (Helpers.clifford2q_gen n)
       (Helpers.nontrivial_pauli_string_gen n)
       (Helpers.nontrivial_pauli_string_gen n))
    (fun (c, p, q) ->
      let before = Pauli_string.commutes p q in
      let bsf = Bsf.of_terms n [ p, 1.0; q, 2.0 ] in
      Bsf.apply_clifford2q bsf c;
      match Bsf.rows bsf with
      | [ r1; r2 ] -> Pauli_string.commutes r1.Bsf.pauli r2.Bsf.pauli = before
      | _ -> false)

(* Directionality: gadget(P,θ) = C† · gadget(C P C†, ±θ) · C. *)
let prop_conjugated_gadget_equivalence =
  Helpers.qtest ~count:200 "gadget(P,θ) = C·gadget(P',θ')·C (C Hermitian)"
    (QCheck2.Gen.triple (Helpers.clifford2q_gen n)
       (Helpers.nontrivial_pauli_string_gen n)
       Helpers.angle_gen)
    (fun (c, p, theta) ->
      let bsf = Bsf.of_terms n [ p, theta ] in
      Bsf.apply_clifford2q bsf c;
      match Bsf.to_terms bsf with
      | [ (p', theta') ] ->
        let uc = Helpers.clifford2q_unitary n c in
        let lhs = Unitary.gadget_matrix p theta in
        let rhs =
          Cmat.mul (Cmat.mul (Cmat.dagger uc) (Unitary.gadget_matrix p' theta')) uc
        in
        Cmat.is_close ~tol:1e-8 lhs rhs
      | _ -> false)

(* --- Incremental column statistics (the delta-cost engine) --- *)

(* Counter maintenance must survive arbitrary op interleavings, including
   row removal.  Equality below is exact (=, not within-epsilon): the
   incremental and reference cost paths evaluate the same closed-form
   expression over what must be identical integer counters, so any
   divergence at all is a maintenance bug. *)
let nq = 5

let op_gen =
  let open QCheck2.Gen in
  frequency
    [
      3, map (fun q -> `H q) (int_range 0 (nq - 1));
      3, map (fun q -> `S q) (int_range 0 (nq - 1));
      3, map (fun q -> `Sdg q) (int_range 0 (nq - 1));
      ( 6,
        map
          (fun (a, d) -> `Cnot (a, (a + 1 + d) mod nq))
          (pair (int_range 0 (nq - 1)) (int_range 0 (nq - 2))) );
      1, return `Pop;
    ]

let apply_op bsf = function
  | `H q -> Bsf.apply_h bsf q
  | `S q -> Bsf.apply_s bsf q
  | `Sdg q -> Bsf.apply_sdg bsf q
  | `Cnot (a, b) -> Bsf.apply_cnot bsf a b
  | `Pop -> ignore (Bsf.pop_local_rows bsf)

(* Recompute every maintained aggregate from the row snapshots alone. *)
let counters_agree bsf =
  let rows = Bsf.rows bsf in
  let weights = List.map (fun r -> Pauli_string.weight r.Bsf.pauli) rows in
  let w_tot =
    List.length
      (List.sort_uniq compare
         (List.concat_map (fun r -> Pauli_string.support_list r.Bsf.pauli) rows))
  in
  let n_nl = List.length (List.filter (fun w -> w > 1) weights) in
  Bsf.cost bsf = Bsf.cost_reference bsf
  && Bsf.total_weight bsf = w_tot
  && Bsf.nonlocal_count bsf = n_nl
  && List.for_all
       (fun (i, w) -> Bsf.row_weight bsf i = w)
       (List.mapi (fun i w -> i, w) weights)

let prop_incremental_cost_exact =
  Helpers.qtest ~count:300 "incremental counters = fresh recomputation"
    (QCheck2.Gen.pair (Helpers.terms_gen nq 8)
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 40) op_gen))
    (fun (terms, ops) ->
      let bsf = Bsf.of_terms nq terms in
      if not (counters_agree bsf) then false
      else begin
        List.iter (apply_op bsf) ops;
        counters_agree bsf && counters_agree (Bsf.copy bsf)
      end)

(* Delta evaluation must predict, bit for bit, the cost the tableau would
   report after actually conjugating — for every generator, on every
   ordered qubit pair, in both workspace operand orders. *)
let prop_delta_eval_exact =
  Helpers.qtest ~count:150 "Delta.eval = cost after apply (all pairs × kinds)"
    (Helpers.terms_gen nq 6)
    (fun terms ->
      let bsf = Bsf.of_terms nq terms in
      let before = Bsf.cost bsf in
      let ws = Bsf.Delta.create () in
      let ok = ref true in
      for a = 0 to nq - 1 do
        for b = a + 1 to nq - 1 do
          Bsf.Delta.load ws bsf ~a ~b;
          List.iter
            (fun kind ->
              List.iter
                (fun swapped ->
                  let g =
                    if swapped then Clifford2q.make kind b a
                    else Clifford2q.make kind a b
                  in
                  let t = Bsf.copy bsf in
                  Bsf.apply_clifford2q t g;
                  let actual = Bsf.cost t in
                  if Bsf.Delta.eval ws g <> actual then ok := false;
                  if Bsf.Delta.eval_kind ws kind ~swapped <> actual then
                    ok := false;
                  if Bsf.eval_clifford2q_delta bsf g <> actual -. before then
                    ok := false)
                [ false; true ])
            Clifford2q.all_kinds
        done
      done;
      !ok)

let test_delta_eval_wrong_pair () =
  let bsf = Bsf.of_terms 3 [ Pauli_string.of_string "XYZ", 1.0 ] in
  let ws = Bsf.Delta.create () in
  Bsf.Delta.load ws bsf ~a:0 ~b:1;
  Alcotest.check_raises "foreign pair rejected"
    (Invalid_argument "Bsf.Delta.eval: gate does not act on the loaded pair")
    (fun () -> ignore (Bsf.Delta.eval ws (Clifford2q.make Clifford2q.CXX 0 2)))

(* The motivating example of Fig. 1(b): conjugating
   [ZYY; ZZY; XYY; XZY] by C(X,Y) on qubits (1,2) leaves only weight-2
   Pauli strings. *)
let test_fig1b_simplification () =
  let strings = [ "ZYY"; "ZZY"; "XYY"; "XZY" ] in
  let terms = List.map (fun s -> Pauli_string.of_string s, 1.0) strings in
  let bsf = Bsf.of_terms 3 terms in
  Alcotest.(check int) "before: all weight 3" 12
    (List.fold_left (fun acc i -> acc + Bsf.row_weight bsf i) 0 [ 0; 1; 2; 3 ]);
  Bsf.apply_clifford2q bsf (Clifford2q.make Clifford2q.CXY 1 2);
  List.iteri
    (fun i _ ->
      Alcotest.(check bool)
        (Printf.sprintf "row %d simplified" i)
        true
        (Bsf.row_weight bsf i <= 2))
    strings

let test_total_weight () =
  let bsf =
    Bsf.of_terms 4
      [ Pauli_string.of_string "XXII", 1.0; Pauli_string.of_string "IXZI", 1.0 ]
  in
  Alcotest.(check int) "union support" 3 (Bsf.total_weight bsf);
  Alcotest.(check (list int)) "indices" [ 0; 1; 2 ] (Bsf.support_indices bsf);
  Alcotest.(check int) "nonlocal count" 2 (Bsf.nonlocal_count bsf)

let test_pop_local_rows () =
  let bsf =
    Bsf.of_terms 3
      [
        Pauli_string.of_string "XII", 0.1;
        Pauli_string.of_string "XYZ", 0.2;
        Pauli_string.of_string "IIZ", 0.3;
      ]
  in
  let peeled = Bsf.pop_local_rows bsf in
  Alcotest.(check int) "two peeled" 2 (List.length peeled);
  Alcotest.(check int) "one kept" 1 (Bsf.num_rows bsf);
  match peeled with
  | [ a; b ] ->
    Alcotest.(check string) "order preserved" "XII"
      (Pauli_string.to_string a.Bsf.pauli);
    Alcotest.(check string) "order preserved 2" "IIZ"
      (Pauli_string.to_string b.Bsf.pauli);
    Alcotest.(check (float 1e-12)) "angle" 0.1 a.Bsf.angle
  | _ -> Alcotest.fail "expected two rows"

let test_pop_local_commuting_only () =
  (* ZII anticommutes with the remaining XYZ on qubit 0, so exact peeling
     must keep it; IIZ commutes (Z vs Z) and leaves. *)
  let bsf =
    Bsf.of_terms 3
      [
        Pauli_string.of_string "ZII", 0.1;
        Pauli_string.of_string "XYZ", 0.2;
        Pauli_string.of_string "IIZ", 0.3;
      ]
  in
  let peeled = Bsf.pop_local_rows ~commuting_only:true bsf in
  Alcotest.(check int) "only commuting peeled" 1 (List.length peeled);
  Alcotest.(check int) "two kept" 2 (Bsf.num_rows bsf)

let test_cost_single_row () =
  let bsf = Bsf.of_terms 3 [ Pauli_string.of_string "XXI", 1.0 ] in
  (* single nonlocal row: cost = w_tot · n_nl² = 2·1 = 2, no pair terms *)
  Alcotest.(check (float 1e-9)) "cost" 2.0 (Bsf.cost bsf)

let test_cost_two_rows () =
  let bsf =
    Bsf.of_terms 3
      [ Pauli_string.of_string "XXI", 1.0; Pauli_string.of_string "IZZ", 1.0 ]
  in
  (* w_tot = 3, n_nl = 2 → 12; pair sup = |{0,1}∪{1,2}| = 3;
     x-part |110∨000| = 2, z-part |000∨011| = 2 → ½(2+2) = 2; total 17 *)
  Alcotest.(check (float 1e-9)) "cost" 17.0 (Bsf.cost bsf)

let test_signs_cnot_yy () =
  (* CNOT (Y⊗Y) CNOT = -X⊗Z: classic sign case. *)
  let bsf = Bsf.of_terms 2 [ Pauli_string.of_string "YY", 1.0 ] in
  Bsf.apply_cnot bsf 0 1;
  match Bsf.rows bsf with
  | [ row ] ->
    Alcotest.(check string) "pauli" "XZ" (Pauli_string.to_string row.Bsf.pauli);
    Alcotest.(check bool) "sign" true row.Bsf.neg
  | _ -> Alcotest.fail "one row expected"

let test_to_terms_folds_sign () =
  let bsf = Bsf.of_terms 2 [ Pauli_string.of_string "YY", 0.7 ] in
  Bsf.apply_cnot bsf 0 1;
  match Bsf.to_terms bsf with
  | [ (p, theta) ] ->
    Alcotest.(check string) "pauli" "XZ" (Pauli_string.to_string p);
    Alcotest.(check (float 1e-12)) "angle negated" (-0.7) theta
  | _ -> Alcotest.fail "one term expected"

let () =
  Alcotest.run "bsf"
    [
      ( "props",
        [
          prop_primitives_match_matrices;
          prop_clifford2q_matches_matrices;
          prop_clifford2q_involutive;
          prop_conjugation_preserves_commutation;
          prop_conjugated_gadget_equivalence;
        ] );
      ( "delta-cost",
        [
          prop_incremental_cost_exact;
          prop_delta_eval_exact;
          Alcotest.test_case "foreign pair rejected" `Quick
            test_delta_eval_wrong_pair;
        ] );
      ( "unit",
        [
          Alcotest.test_case "Fig. 1(b) example" `Quick test_fig1b_simplification;
          Alcotest.test_case "total weight" `Quick test_total_weight;
          Alcotest.test_case "pop local rows" `Quick test_pop_local_rows;
          Alcotest.test_case "pop local commuting-only" `Quick
            test_pop_local_commuting_only;
          Alcotest.test_case "cost single row" `Quick test_cost_single_row;
          Alcotest.test_case "cost two rows" `Quick test_cost_two_rows;
          Alcotest.test_case "CNOT YY sign" `Quick test_signs_cnot_yy;
          Alcotest.test_case "to_terms folds sign" `Quick test_to_terms_folds_sign;
        ] );
    ]
