(* Streaming compilation: the chunked driver must be a pure refactoring
   of the whole-program compiler.  A one-step stream is bit-identical to
   [compile]; a k-step stream is bit-identical to the concatenation of k
   independent compiles; dropping the retained circuit
   ([keep_circuit:false]) changes nothing but the memory profile. *)

module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Compiler = Phoenix.Compiler
module Registry = Phoenix_pipeline.Registry
module Hamiltonian = Phoenix_ham.Hamiltonian

let uccsd =
  lazy
    (let b = Phoenix_ham.Molecules.find "LiH_frz_JW" in
     Phoenix_ham.Uccsd.ansatz b.Phoenix_ham.Molecules.encoding
       b.Phoenix_ham.Molecules.spec)

let qaoa =
  lazy
    (Phoenix_ham.Qaoa.maxcut_cost
       (List.assoc "Reg3-16" (Phoenix_ham.Qaoa.benchmark_suite ())))

let hubbard = lazy (Phoenix_ham.Fermi_hubbard.lattice ~rows:2 ~cols:2 ())

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "pipeline %S not registered" name

let gates_equal name a b =
  Alcotest.(check (list string))
    name
    (List.map Gate.to_string (Circuit.gates a))
    (List.map Gate.to_string (Circuit.gates b))

let check_metrics name (a : Compiler.report) (b : Compiler.report) =
  Alcotest.(check int) (name ^ " two_q") a.Compiler.two_q_count
    b.Compiler.two_q_count;
  Alcotest.(check int) (name ^ " one_q") a.Compiler.one_q_count
    b.Compiler.one_q_count;
  Alcotest.(check int) (name ^ " depth_2q") a.Compiler.depth_2q
    b.Compiler.depth_2q

(* One-step stream ≡ whole-program compile, gate for gate. *)
let test_single_chunk_identity pipeline h () =
  let e = entry pipeline in
  let whole = Registry.compile e h in
  let s = Registry.compile_stream ~steps:1 e h in
  Alcotest.(check int) "chunks" 1 s.Compiler.s_chunks;
  gates_equal "gates" whole.Compiler.circuit
    s.Compiler.s_report.Compiler.circuit;
  check_metrics "metrics" whole s.Compiler.s_report;
  Alcotest.(check (list int))
    "per-chunk 2q" [ whole.Compiler.two_q_count ] s.Compiler.s_chunk_two_q

(* k-step stream ≡ concatenation of k independent compiles.  (Not the
   whole-program compile of the concatenated gadget list: grouping may
   merge across step boundaries there, which streaming forbids.) *)
let test_multi_chunk_concat pipeline h () =
  let e = entry pipeline in
  let steps = 3 in
  let n = Hamiltonian.num_qubits h in
  let one = Registry.compile e h in
  let expected =
    Circuit.concat_list n
      (List.init steps (fun _ -> one.Compiler.circuit))
  in
  let s = Registry.compile_stream ~steps e h in
  Alcotest.(check int) "chunks" steps s.Compiler.s_chunks;
  gates_equal "gates" expected s.Compiler.s_report.Compiler.circuit;
  Alcotest.(check (list int))
    "per-chunk 2q"
    (List.init steps (fun _ -> one.Compiler.two_q_count))
    s.Compiler.s_chunk_two_q

(* keep_circuit:false must not change the reported metrics, and the emit
   callback must see exactly the retained circuit, chunk by chunk. *)
let test_discard_equals_kept () =
  let e = entry "phoenix" in
  let h = Lazy.force qaoa in
  let n = Hamiltonian.num_qubits h in
  let steps = 2 in
  let kept = Registry.compile_stream ~steps e h in
  let emitted = ref [] in
  let s =
    Registry.compile_stream ~steps ~keep_circuit:false
      ~emit:(fun c -> emitted := c :: !emitted)
      e h
  in
  Alcotest.(check bool)
    "discarded circuit is empty" true
    (Circuit.gates s.Compiler.s_report.Compiler.circuit = []);
  Alcotest.(check int)
    "two_q" kept.Compiler.s_report.Compiler.two_q_count
    s.Compiler.s_report.Compiler.two_q_count;
  Alcotest.(check int)
    "one_q" kept.Compiler.s_report.Compiler.one_q_count
    s.Compiler.s_report.Compiler.one_q_count;
  (* Without the retained circuit, depth is the per-chunk sum — an upper
     bound on the concatenated depth (chunks can overlap layers). *)
  Alcotest.(check bool)
    "depth_2q upper bound" true
    (s.Compiler.s_report.Compiler.depth_2q
    >= kept.Compiler.s_report.Compiler.depth_2q);
  Alcotest.(check int)
    "gadgets" kept.Compiler.s_gadgets s.Compiler.s_gadgets;
  gates_equal "emitted chunks concat to the kept circuit"
    kept.Compiler.s_report.Compiler.circuit
    (Circuit.concat_list n (List.rev !emitted))

let test_rejects_hardware () =
  let topo = Phoenix_topology.Topology.line 4 in
  let options =
    { Compiler.default_options with Compiler.target = Compiler.Hardware topo }
  in
  let chunk =
    Compiler.chunk_of_gadgets [ (Helpers.Pauli_string.of_string "XXII", 0.3) ]
  in
  Alcotest.(check bool)
    "hardware target rejected" true
    (try
       ignore (Compiler.compile_stream ~options 4 (Seq.return chunk));
       false
     with Invalid_argument _ -> true)

let test_rejects_bad_steps () =
  Alcotest.(check bool)
    "steps = 0 rejected" true
    (try
       ignore (Registry.compile_stream ~steps:0 (entry "phoenix") (Lazy.force qaoa));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "stream"
    [
      ( "single-chunk identity",
        [
          Alcotest.test_case "phoenix uccsd LiH" `Quick
            (test_single_chunk_identity "phoenix" (Lazy.force uccsd));
          Alcotest.test_case "phoenix qaoa Reg3-16" `Quick
            (test_single_chunk_identity "phoenix" (Lazy.force qaoa));
          Alcotest.test_case "phoenix fermi-hubbard 2x2" `Quick
            (test_single_chunk_identity "phoenix" (Lazy.force hubbard));
          Alcotest.test_case "tket qaoa Reg3-16" `Quick
            (test_single_chunk_identity "tket" (Lazy.force qaoa));
          Alcotest.test_case "naive fermi-hubbard 2x2" `Quick
            (test_single_chunk_identity "naive" (Lazy.force hubbard));
        ] );
      ( "multi-chunk concatenation",
        [
          Alcotest.test_case "phoenix qaoa Reg3-16" `Quick
            (test_multi_chunk_concat "phoenix" (Lazy.force qaoa));
          Alcotest.test_case "phoenix fermi-hubbard 2x2" `Quick
            (test_multi_chunk_concat "phoenix" (Lazy.force hubbard));
          Alcotest.test_case "tetris qaoa Reg3-16" `Quick
            (test_multi_chunk_concat "tetris" (Lazy.force qaoa));
        ] );
      ( "contracts",
        [
          Alcotest.test_case "discard ≡ kept" `Quick test_discard_equals_kept;
          Alcotest.test_case "hardware rejected" `Quick test_rejects_hardware;
          Alcotest.test_case "steps ≥ 1" `Quick test_rejects_bad_steps;
        ] );
    ]
