module Pauli_string = Helpers.Pauli_string
module Pauli_term = Phoenix_pauli.Pauli_term
module Hamiltonian = Phoenix_ham.Hamiltonian
module Pauli_sum = Phoenix_ham.Pauli_sum
module Fermion = Phoenix_ham.Fermion
module Uccsd = Phoenix_ham.Uccsd
module Molecules = Phoenix_ham.Molecules
module Graphs = Phoenix_ham.Graphs
module Qaoa = Phoenix_ham.Qaoa
module Spin_models = Phoenix_ham.Spin_models

(* --- Pauli_sum algebra --- *)

let ps s = Pauli_string.of_string s
let c re im = { Complex.re; im }

let test_sum_normalization () =
  let a = Pauli_sum.of_term (c 1.0 0.0) (ps "XZ") in
  let b = Pauli_sum.of_term (c (-1.0) 0.0) (ps "XZ") in
  Alcotest.(check bool) "cancels to zero" true (Pauli_sum.is_zero (Pauli_sum.add a b));
  let d = Pauli_sum.add a a in
  Alcotest.(check int) "collected" 1 (Pauli_sum.num_terms d)

let test_sum_mul () =
  (* (X)(Z) = -iY *)
  let prod =
    Pauli_sum.mul (Pauli_sum.of_term Complex.one (ps "X"))
      (Pauli_sum.of_term Complex.one (ps "Z"))
  in
  match Pauli_sum.terms prod with
  | [ (coeff, p) ] ->
    Alcotest.(check string) "pauli" "Y" (Pauli_string.to_string p);
    Alcotest.(check (float 1e-12)) "im" (-1.0) coeff.Complex.im
  | _ -> Alcotest.fail "one term expected"

let test_dagger_hermitian () =
  let op = Pauli_sum.of_term (c 0.0 1.0) (ps "XY") in
  Alcotest.(check bool) "iXY anti-hermitian" true (Pauli_sum.is_anti_hermitian op);
  Alcotest.(check bool) "dagger flips" true
    (Pauli_sum.is_zero (Pauli_sum.add (Pauli_sum.dagger op) op))

(* --- Canonical anticommutation relations: the correctness certificate
       for both encodings. --- *)

let car_holds enc n =
  let aop = Fermion.annihilation enc n and cop = Fermion.creation enc n in
  let ok = ref true in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      (* {a_p, a†_q} = δ_pq *)
      let acr = Pauli_sum.anticommutator (aop p) (cop q) in
      let expected =
        if p = q then Pauli_sum.identity n else Pauli_sum.zero n
      in
      if not (Pauli_sum.is_zero (Pauli_sum.sub acr expected)) then ok := false;
      (* {a_p, a_q} = 0 *)
      if not (Pauli_sum.is_zero (Pauli_sum.anticommutator (aop p) (aop q)))
      then ok := false
    done
  done;
  !ok

let test_car_jw () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "JW CAR n=%d" n) true
        (car_holds Fermion.Jordan_wigner n))
    [ 1; 2; 3; 5 ]

let test_car_bk () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "BK CAR n=%d" n) true
        (car_holds Fermion.Bravyi_kitaev n))
    [ 1; 2; 3; 4; 5; 8 ]

let test_number_operator_idempotent () =
  (* n_j² = n_j for fermions. *)
  List.iter
    (fun enc ->
      let n = 4 in
      for j = 0 to n - 1 do
        let num = Fermion.number_operator enc n j in
        Alcotest.(check bool)
          (Printf.sprintf "%s n_%d idempotent" (Fermion.encoding_to_string enc) j)
          true
          (Pauli_sum.is_zero (Pauli_sum.sub (Pauli_sum.mul num num) num))
      done)
    [ Fermion.Jordan_wigner; Fermion.Bravyi_kitaev ]

let test_excitations_hermitian () =
  List.iter
    (fun enc ->
      let s = Fermion.excitation_single enc 4 ~p:3 ~q:0 in
      Alcotest.(check bool) "single hermitian" true (Pauli_sum.is_hermitian s);
      let d = Fermion.excitation_double enc 4 ~p:2 ~q:3 ~r:1 ~s:0 in
      Alcotest.(check bool) "double hermitian" true (Pauli_sum.is_hermitian d))
    [ Fermion.Jordan_wigner; Fermion.Bravyi_kitaev ]

let test_jw_single_structure () =
  (* JW single excitation i(a†_2 a_0 − h.c.) = (XZY − YZX)/2-type: exactly
     2 strings of weight 3 with a Z-chain. *)
  let s = Fermion.excitation_single Fermion.Jordan_wigner 3 ~p:2 ~q:0 in
  let ts = Pauli_sum.to_hermitian_terms s in
  Alcotest.(check int) "2 strings" 2 (List.length ts);
  List.iter
    (fun (p, coeff) ->
      Alcotest.(check int) "weight 3" 3 (Pauli_string.weight p);
      Alcotest.(check (float 1e-12)) "|coeff| = 1/2" 0.5 (Float.abs coeff))
    ts

let test_jw_double_has_8_strings () =
  let d = Fermion.excitation_double Fermion.Jordan_wigner 4 ~p:2 ~q:3 ~r:1 ~s:0 in
  Alcotest.(check int) "8 strings" 8
    (List.length (Pauli_sum.to_hermitian_terms d))

let test_bk_sets_small () =
  (* n = 4 Fenwick tree: parent 0→1, 1→3, 2→3.  Sets are unordered. *)
  let sorted l = List.sort compare l in
  let check name expected got =
    Alcotest.(check (list int)) name expected (sorted got)
  in
  check "U(0)" [ 1; 3 ] (Fermion.bk_update_set 4 0);
  check "U(1)" [ 3 ] (Fermion.bk_update_set 4 1);
  check "U(2)" [ 3 ] (Fermion.bk_update_set 4 2);
  check "U(3)" [] (Fermion.bk_update_set 4 3);
  check "F(1)" [ 0 ] (Fermion.bk_flip_set 4 1);
  check "F(3)" [ 1; 2 ] (Fermion.bk_flip_set 4 3);
  check "P(2)" [ 1 ] (Fermion.bk_parity_set 4 2);
  check "P(3)" [ 1; 2 ] (Fermion.bk_parity_set 4 3);
  check "R(3)" [] (Fermion.bk_remainder_set 4 3)

let test_ladder_memoized () =
  (* [Fermion.ladder] is hashtbl-memoized per (encoding, n, mode, dagger):
     repeated construction returns the same persistent value, and the
     memo must be invisible in the encoded physics. *)
  List.iter
    (fun enc ->
      let a1 = Fermion.creation enc 8 3 and a2 = Fermion.creation enc 8 3 in
      Alcotest.(check bool) "creation shared" true (a1 == a2);
      let b1 = Fermion.annihilation enc 8 3
      and b2 = Fermion.annihilation enc 8 3 in
      Alcotest.(check bool) "annihilation shared" true (b1 == b2);
      Alcotest.(check bool) "dagger variants distinct" false (a1 == b1))
    [ Fermion.Jordan_wigner; Fermion.Bravyi_kitaev ]

let test_lih_term_counts_pinned () =
  (* The memoized encodings must reproduce the LiH preset term counts of
     Table I exactly — per excitation kind and in total. *)
  List.iter
    (fun (label, expected) ->
      let b = Molecules.find label in
      let h = Uccsd.ansatz b.Molecules.encoding b.Molecules.spec in
      Alcotest.(check int) (label ^ " total #Pauli") expected
        (Hamiltonian.num_terms h);
      Alcotest.(check int)
        (label ^ " predicted #Pauli")
        expected
        (Uccsd.num_pauli_terms b.Molecules.encoding b.Molecules.spec))
    [ "LiH_frz_JW", 144; "LiH_frz_BK", 144 ]

(* --- UCCSD: excitation structure and Table I parity --- *)

let test_uccsd_excitation_counts () =
  (* LiH frozen: 2 active electrons, 10 qubits → 8 singles + 16 doubles. *)
  let spec = Molecules.frozen Molecules.lih in
  let exs = Uccsd.excitations spec in
  let singles =
    List.length (List.filter (function Uccsd.Single _ -> true | Uccsd.Double _ -> false) exs)
  in
  Alcotest.(check int) "qubits" 10 (Uccsd.num_qubits spec);
  Alcotest.(check int) "singles" 8 singles;
  Alcotest.(check int) "doubles" 16 (List.length exs - singles)

let table1_expected =
  (* label, qubits, #Pauli — from the paper's Table I. *)
  [
    "CH2_cmplt_BK", 14, 1488;
    "CH2_cmplt_JW", 14, 1488;
    "CH2_frz_BK", 12, 828;
    "CH2_frz_JW", 12, 828;
    "H2O_cmplt_BK", 14, 1000;
    "H2O_cmplt_JW", 14, 1000;
    "H2O_frz_BK", 12, 640;
    "H2O_frz_JW", 12, 640;
    "LiH_cmplt_BK", 12, 640;
    "LiH_cmplt_JW", 12, 640;
    "LiH_frz_BK", 10, 144;
    "LiH_frz_JW", 10, 144;
    "NH_cmplt_BK", 12, 640;
    "NH_cmplt_JW", 12, 640;
    "NH_frz_BK", 10, 360;
    "NH_frz_JW", 10, 360;
  ]

let test_table1_qubit_and_pauli_counts () =
  List.iter
    (fun (label, qubits, pauli) ->
      let b = Molecules.find label in
      Alcotest.(check int) (label ^ " qubits") qubits (Uccsd.num_qubits b.Molecules.spec);
      let h = Uccsd.ansatz b.Molecules.encoding b.Molecules.spec in
      Alcotest.(check int) (label ^ " #Pauli") pauli (Hamiltonian.num_terms h))
    table1_expected

let test_jw_max_weight_is_full_register () =
  (* Table I: w_max = #qubits for JW complete molecules. *)
  let b = Molecules.find "LiH_cmplt_JW" in
  let h = Uccsd.ansatz b.Molecules.encoding b.Molecules.spec in
  Alcotest.(check int) "w_max" 12 (Hamiltonian.max_weight h)

let test_bk_weight_below_jw () =
  let bk = Molecules.find "CH2_cmplt_BK" and jw = Molecules.find "CH2_cmplt_JW" in
  let wh b = Hamiltonian.max_weight (Uccsd.ansatz b.Molecules.encoding b.Molecules.spec) in
  Alcotest.(check bool) "BK < JW max weight" true (wh bk < wh jw)

let test_ansatz_deterministic () =
  let b = Molecules.find "LiH_frz_JW" in
  let h1 = Uccsd.ansatz ~seed:5 b.Molecules.encoding b.Molecules.spec in
  let h2 = Uccsd.ansatz ~seed:5 b.Molecules.encoding b.Molecules.spec in
  Alcotest.(check bool) "same" true
    (List.for_all2 Pauli_term.equal (Hamiltonian.terms h1) (Hamiltonian.terms h2))

let test_amplitude_scale () =
  let b = Molecules.find "LiH_frz_JW" in
  let h1 = Uccsd.ansatz ~amplitude_scale:1.0 b.Molecules.encoding b.Molecules.spec in
  let h2 = Uccsd.ansatz ~amplitude_scale:0.5 b.Molecules.encoding b.Molecules.spec in
  List.iter2
    (fun (t1 : Pauli_term.t) (t2 : Pauli_term.t) ->
      Alcotest.(check (float 1e-12)) "halved" (t1.Pauli_term.coeff /. 2.0)
        t2.Pauli_term.coeff)
    (Hamiltonian.terms h1) (Hamiltonian.terms h2)

(* --- Hamiltonian io and metrics --- *)

let test_hamiltonian_io_roundtrip () =
  let h = Spin_models.heisenberg_chain 4 in
  let h' = Hamiltonian.of_lines (Hamiltonian.to_lines h) in
  Alcotest.(check int) "terms" (Hamiltonian.num_terms h) (Hamiltonian.num_terms h');
  Alcotest.(check bool) "equal" true
    (List.for_all2 Pauli_term.equal (Hamiltonian.terms h) (Hamiltonian.terms h'))

let test_trotter_gadgets () =
  let h = Spin_models.tfim_chain ~j:1.0 ~h:0.5 3 in
  let gs = Hamiltonian.trotter_gadgets ~tau:0.1 h in
  Alcotest.(check int) "gadget count" (Hamiltonian.num_terms h) (List.length gs);
  match gs with
  | (_, theta) :: _ -> Alcotest.(check (float 1e-12)) "angle" (-0.2) theta
  | [] -> Alcotest.fail "no gadgets"

(* --- graphs and QAOA --- *)

let test_random_regular () =
  List.iter
    (fun (n, d) ->
      let g = Graphs.random_regular ~seed:7 ~degree:d n in
      Alcotest.(check bool) (Printf.sprintf "%d-regular on %d" d n) true
        (Graphs.is_regular d g);
      Alcotest.(check int) "edge count" (n * d / 2) (Graphs.num_edges g))
    [ 16, 4; 20, 4; 24, 4; 16, 3; 20, 3; 24, 3 ]

let test_random_regular_deterministic () =
  let g1 = Graphs.random_regular ~seed:11 ~degree:3 16 in
  let g2 = Graphs.random_regular ~seed:11 ~degree:3 16 in
  Alcotest.(check bool) "same edges" true (Graphs.edges g1 = Graphs.edges g2)

let test_qaoa_term_counts () =
  List.iter
    (fun (label, g) ->
      let h = Qaoa.maxcut_cost g in
      let expected = Graphs.num_edges g in
      Alcotest.(check int) label expected (Hamiltonian.num_terms h);
      Alcotest.(check int) (label ^ " weight") 2 (Hamiltonian.max_weight h))
    (Qaoa.benchmark_suite ())

let test_qaoa_table4_pauli_counts () =
  (* Table IV: #Pauli = 32/40/48 for Rand, 24/30/36 for Reg3. *)
  let expected =
    [ "Rand-16", 32; "Rand-20", 40; "Rand-24", 48;
      "Reg3-16", 24; "Reg3-20", 30; "Reg3-24", 36 ]
  in
  let suite = Qaoa.benchmark_suite () in
  List.iter
    (fun (label, count) ->
      let g = List.assoc label suite in
      Alcotest.(check int) label count
        (Hamiltonian.num_terms (Qaoa.maxcut_cost g)))
    expected

let test_qaoa_ansatz_layers () =
  let g = Graphs.cycle 4 in
  let h = Qaoa.ansatz ~layers:2 g in
  (* per layer: 4 edges + 4 mixers *)
  Alcotest.(check int) "terms" 16 (Hamiltonian.num_terms h)

let test_spin_models () =
  let h = Spin_models.heisenberg_chain ~periodic:true 4 in
  Alcotest.(check int) "heisenberg pbc terms" 12 (Hamiltonian.num_terms h);
  let t = Spin_models.tfim_chain 5 in
  Alcotest.(check int) "tfim terms" 9 (Hamiltonian.num_terms t);
  let xy = Spin_models.xy_chain 3 in
  Alcotest.(check int) "xy terms" 4 (Hamiltonian.num_terms xy)

let prop_sum_mul_associative =
  Helpers.qtest ~count:60 "pauli-sum product is associative"
    (QCheck2.Gen.triple (Helpers.pauli_string_gen 3) (Helpers.pauli_string_gen 3)
       (Helpers.pauli_string_gen 3))
    (fun (a, b, cc) ->
      let s p = Pauli_sum.of_term (c 1.0 0.5) p in
      let lhs = Pauli_sum.mul (Pauli_sum.mul (s a) (s b)) (s cc) in
      let rhs = Pauli_sum.mul (s a) (Pauli_sum.mul (s b) (s cc)) in
      Pauli_sum.is_zero (Pauli_sum.sub lhs rhs))

let () =
  Alcotest.run "ham"
    [
      ( "pauli-sum",
        [
          Alcotest.test_case "normalization" `Quick test_sum_normalization;
          Alcotest.test_case "product" `Quick test_sum_mul;
          Alcotest.test_case "dagger" `Quick test_dagger_hermitian;
        ] );
      ( "fermion",
        [
          Alcotest.test_case "JW CAR" `Quick test_car_jw;
          Alcotest.test_case "BK CAR" `Quick test_car_bk;
          Alcotest.test_case "number idempotent" `Quick
            test_number_operator_idempotent;
          Alcotest.test_case "excitations hermitian" `Quick
            test_excitations_hermitian;
          Alcotest.test_case "JW single structure" `Quick test_jw_single_structure;
          Alcotest.test_case "JW double 8 strings" `Quick
            test_jw_double_has_8_strings;
          Alcotest.test_case "BK index sets (n=4)" `Quick test_bk_sets_small;
          Alcotest.test_case "ladder memoized" `Quick test_ladder_memoized;
          Alcotest.test_case "LiH term counts pinned" `Quick
            test_lih_term_counts_pinned;
        ] );
      ( "uccsd",
        [
          Alcotest.test_case "excitation counts" `Quick test_uccsd_excitation_counts;
          Alcotest.test_case "Table I qubit/#Pauli parity" `Slow
            test_table1_qubit_and_pauli_counts;
          Alcotest.test_case "JW max weight" `Quick test_jw_max_weight_is_full_register;
          Alcotest.test_case "BK weight < JW" `Quick test_bk_weight_below_jw;
          Alcotest.test_case "deterministic" `Quick test_ansatz_deterministic;
          Alcotest.test_case "amplitude scale" `Quick test_amplitude_scale;
        ] );
      ( "hamiltonian",
        [
          Alcotest.test_case "io roundtrip" `Quick test_hamiltonian_io_roundtrip;
          Alcotest.test_case "trotter gadgets" `Quick test_trotter_gadgets;
        ] );
      ( "qaoa",
        [
          Alcotest.test_case "random regular" `Quick test_random_regular;
          Alcotest.test_case "regular deterministic" `Quick
            test_random_regular_deterministic;
          Alcotest.test_case "term counts" `Quick test_qaoa_term_counts;
          Alcotest.test_case "Table IV #Pauli" `Quick test_qaoa_table4_pauli_counts;
          Alcotest.test_case "ansatz layers" `Quick test_qaoa_ansatz_layers;
        ] );
      ("spin", [ Alcotest.test_case "models" `Quick test_spin_models ]);
      ("props", [ prop_sum_mul_associative ]);
    ]
