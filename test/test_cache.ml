(* Differential harness for the content-addressed synthesis cache.

   The headline guarantee under test: cached and cold compilation are
   bit-identical — for the paper's preset workloads (pinned against the
   golden digests of test_pipeline.ml), for every registered pipeline,
   and for random gadget programs (qcheck).  Plus the addressing
   properties (digest invariant under gadget reordering and monotone
   relabelling, distinct for sign-flipped tableaux; synthesis
   equivariance backing relabelled replay), disk-tier fault injection
   (truncated / bit-flipped / version-mismatched entries are skipped
   with a Warning diagnostic and self-heal), and LRU byte-budget
   enforcement under a seeded random workload. *)

module Pauli_string = Helpers.Pauli_string
module Bsf = Helpers.Bsf
module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Cache = Phoenix_cache.Cache
module Compiler = Phoenix.Compiler
module Group = Phoenix.Group
module Synthesis = Phoenix.Synthesis
module Registry = Phoenix_pipeline.Registry
module Diag = Phoenix_verify.Diag
module Topology = Phoenix_topology.Topology

(* Every disk-tier test in this process runs against a private cache
   directory; the env var is set before any cache code reads it. *)
let cache_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "phoenix-cache-test-%d" (Unix.getpid ()))
  in
  Unix.putenv "PHOENIX_CACHE_DIR" d;
  d

let fresh_cache () =
  ignore (Cache.Persist.clear ~dir:cache_dir ());
  Cache.clear_memory ();
  Cache.reset_stats ()

let digest c =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" (List.map Gate.to_string (Circuit.gates c))))

let uccsd =
  lazy
    (let b = Phoenix_ham.Molecules.find "LiH_frz_JW" in
     Phoenix_ham.Uccsd.ansatz b.Phoenix_ham.Molecules.encoding
       b.Phoenix_ham.Molecules.spec)

let qaoa =
  lazy
    (Phoenix_ham.Qaoa.maxcut_cost
       (List.assoc "Reg3-16" (Phoenix_ham.Qaoa.benchmark_suite ())))

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "pipeline %S not registered" name

let opts ?(cache = Cache.Off) ?(exact = false) ?(verify = false) ?target ?isa
    () =
  {
    Compiler.default_options with
    cache;
    exact;
    verify;
    target = Option.value ~default:Compiler.Logical target;
    isa = Option.value ~default:Compiler.Cnot_isa isa;
  }

let with_cache cache o = { o with Compiler.cache }

(* --- cold vs. warm on the preset workloads (golden digests) ---------- *)

let preset_cases () =
  let hh = Topology.ibm_manhattan () in
  [
    "uccsd default", uccsd, opts (), "7d48fb3580566670e9c516844bd872e9";
    "uccsd exact", uccsd, opts ~exact:true (), "2653091b6f8d67a9652b7659c13a114e";
    "uccsd su4", uccsd, opts ~isa:Compiler.Su4_isa (), "a0d4a70295c4d7776227f594e5510949";
    ( "uccsd heavyhex",
      uccsd,
      opts ~target:(Compiler.Hardware hh) (),
      "57a7a78f231e6e15db126a62da89880c" );
    "qaoa default", qaoa, opts (), "af92c9b8ba1d6b29d8f558db7be67665";
    "qaoa exact", qaoa, opts ~exact:true (), "982c5d8dc8498f6d666ef2224fab3035";
    ( "qaoa heavyhex",
      qaoa,
      opts ~target:(Compiler.Hardware hh) (),
      "8c595a2b87bb915b30abf42915a52533" );
  ]

let test_warm_equals_cold_presets () =
  let phoenix = entry "phoenix" in
  List.iter
    (fun (name, h, o, md5) ->
      let h = Lazy.force h in
      Cache.clear_memory ();
      let cold = Registry.compile ~options:(with_cache Cache.Off o) phoenix h in
      Alcotest.(check string) (name ^ " cold golden") md5
        (digest cold.Compiler.circuit);
      Alcotest.(check int)
        (name ^ " off-tier counters silent")
        0
        (cold.Compiler.cache_stats.Cache.hits
        + cold.Compiler.cache_stats.Cache.misses);
      Cache.reset_stats ();
      let first = Registry.compile ~options:(with_cache Cache.Mem o) phoenix h in
      let warm = Registry.compile ~options:(with_cache Cache.Mem o) phoenix h in
      Alcotest.(check string) (name ^ " populate = cold") md5
        (digest first.Compiler.circuit);
      Alcotest.(check string) (name ^ " warm = cold") md5
        (digest warm.Compiler.circuit);
      let s = warm.Compiler.cache_stats in
      Alcotest.(check bool) (name ^ " warm hit") true (s.Cache.hits > 0);
      Alcotest.(check int) (name ^ " warm misses") 0 s.Cache.misses)
    (preset_cases ())

(* Every registered pipeline: cold, disk-populating and disk-warm runs
   (memory dropped in between, simulating a new process) agree bit for
   bit.  For the baselines the cache never engages — the counters must
   stay zero — and for phoenix the warm run must be served from disk. *)
let test_all_pipelines_disk_identical () =
  fresh_cache ();
  List.iter
    (fun (e : Registry.entry) ->
      let h, o =
        if e.Registry.name = "2qan" then
          ( Lazy.force qaoa,
            opts ~target:(Compiler.Hardware (Topology.line 16)) () )
        else (Lazy.force uccsd, opts ())
      in
      Cache.clear_memory ();
      let cold = Registry.compile ~options:(with_cache Cache.Off o) e h in
      let populate = Registry.compile ~options:(with_cache Cache.Disk o) e h in
      Cache.clear_memory ();
      Cache.reset_stats ();
      let warm = Registry.compile ~options:(with_cache Cache.Disk o) e h in
      let name = e.Registry.name in
      Alcotest.(check string) (name ^ " populate = cold")
        (digest cold.Compiler.circuit)
        (digest populate.Compiler.circuit);
      Alcotest.(check string) (name ^ " disk-warm = cold")
        (digest cold.Compiler.circuit)
        (digest warm.Compiler.circuit);
      let s = warm.Compiler.cache_stats in
      if name = "phoenix" then begin
        Alcotest.(check bool) (name ^ " disk hits") true (s.Cache.disk_hits > 0);
        Alcotest.(check int) (name ^ " no misses") 0 s.Cache.misses
      end
      else
        Alcotest.(check int) (name ^ " cache idle") 0
          (s.Cache.hits + s.Cache.misses))
    Registry.all

(* --- qcheck: addressing properties ----------------------------------- *)

let rotate l k =
  let arr = Array.of_list l in
  let len = Array.length arr in
  List.init len (fun i -> arr.((i + k) mod len))

let prop_digest_reorder_invariant =
  Helpers.qtest ~count:300 "digest invariant under gadget reordering"
    QCheck2.Gen.(pair (Helpers.terms_gen 5 8) (int_range 0 17))
    (fun (terms, k) ->
      let d1 = Bsf.canonical_digest (Bsf.of_terms 5 terms) in
      let d2 =
        Bsf.canonical_digest (Bsf.of_terms 5 (rotate (List.rev terms) k))
      in
      String.equal d1 d2)

let prop_digest_sign_flip_distinct =
  Helpers.qtest ~count:300 "digest distinct for sign-flipped tableaux"
    (Helpers.terms_gen 5 8)
    (fun terms ->
      let t = Bsf.of_terms 5 terms in
      let d1 = Bsf.canonical_digest t in
      Bsf.Testing.corrupt_sign t 0;
      not (String.equal d1 (Bsf.canonical_digest t)))

(* Monotone injections of a 4-qubit register into 10 qubits: gaps keep
   the image strictly increasing, the base shift moves the whole image. *)
let monotone_gen =
  let open QCheck2.Gen in
  map
    (fun (s, gaps) ->
      let sel = Array.make 4 0 in
      let pos = ref (s - 1) in
      List.iteri
        (fun i g ->
          pos := !pos + 1 + g;
          sel.(i) <- !pos)
        gaps;
      sel)
    (pair (int_range 0 2) (list_size (return 4) (int_range 0 1)))

let relabel sel p =
  List.fold_left
    (fun acc i -> Pauli_string.set acc sel.(i) (Pauli_string.get p i))
    (Pauli_string.identity 10)
    [ 0; 1; 2; 3 ]

(* Relabelled replay is sound: the digest is relabel-invariant AND
   synthesis itself is equivariant under monotone support relabelling
   (within one bit-vector word), so replaying a cached circuit onto a
   different absolute support reproduces the cold synthesis exactly. *)
let prop_relabel_equivariance =
  Helpers.qtest ~count:200
    "digest relabel-invariant, synthesis relabel-equivariant"
    QCheck2.Gen.(pair (Helpers.terms_gen 4 6) monotone_gen)
    (fun (terms, sel) ->
      let terms' = List.map (fun (p, a) -> (relabel sel p, a)) terms in
      let d = Bsf.canonical_digest (Bsf.of_terms 4 terms) in
      let d' = Bsf.canonical_digest (Bsf.of_terms 10 terms') in
      let c = Synthesis.group_circuit (Group.of_terms 4 terms) in
      let c' = Synthesis.group_circuit (Group.of_terms 10 terms') in
      let mapped =
        Circuit.map_qubits
          (fun q -> if q < 4 then sel.(q) else q)
          (Circuit.with_num_qubits 10 c)
      in
      String.equal d d' && Circuit.equal c' mapped)

(* --- qcheck: cold = warm = re-warm on random gadget programs --------- *)

let prop_warm_equals_cold_random =
  Helpers.qtest ~count:60 "cold = populate = warm on random programs"
    (Helpers.terms_gen 5 10)
    (fun terms ->
      Cache.clear_memory ();
      let run tier =
        digest
          (Compiler.compile_gadgets
             ~options:(opts ~cache:tier ()) 5 terms)
            .Compiler.circuit
      in
      let cold = run Cache.Off in
      let populate = run Cache.Mem in
      let warm = run Cache.Mem in
      String.equal cold populate && String.equal cold warm)

(* --- disk-tier fault injection --------------------------------------- *)

let read_all path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_all path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let corrupt_truncate path = write_all path (String.sub (read_all path) 0 (String.length (read_all path) / 2))

let corrupt_bitflip path =
  let s = Bytes.of_string (read_all path) in
  let i = Bytes.length s - 1 in
  Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x01));
  write_all path (Bytes.to_string s)

let corrupt_version path =
  let s = read_all path in
  let nl = String.index s '\n' in
  write_all path ("phoenix-cache-v0" ^ String.sub s nl (String.length s - nl))

let heisenberg = lazy (Phoenix_ham.Spin_models.heisenberg_chain 6)

let cache_warnings (r : Compiler.report) =
  List.filter
    (fun (d : Diag.t) ->
      d.Diag.pass = "cache" && d.Diag.severity = Diag.Warning)
    r.Compiler.diagnostics

let test_disk_fault_injection () =
  let h = Lazy.force heisenberg in
  let o = opts () in
  List.iter
    (fun (kind, corrupt) ->
      fresh_cache ();
      let cold = Registry.compile ~options:o (entry "phoenix") h in
      let _populate =
        Registry.compile ~options:(with_cache Cache.Disk o) (entry "phoenix") h
      in
      let files = Cache.Persist.list_files ~dir:cache_dir () in
      Alcotest.(check bool) (kind ^ " entries persisted") true (files <> []);
      corrupt (List.hd files);
      Cache.clear_memory ();
      Cache.reset_stats ();
      let r =
        Registry.compile ~options:(with_cache Cache.Disk o) (entry "phoenix") h
      in
      Alcotest.(check string) (kind ^ " recompilation = cold")
        (digest cold.Compiler.circuit)
        (digest r.Compiler.circuit);
      let s = r.Compiler.cache_stats in
      Alcotest.(check bool) (kind ^ " detected") true (s.Cache.disk_errors > 0);
      Alcotest.(check bool)
        (kind ^ " warning diagnostic")
        true
        (cache_warnings r <> []);
      (* Self-healing: the recompilation re-persisted the entry, so the
         next cold-memory run is served from disk without complaints. *)
      Cache.clear_memory ();
      Cache.reset_stats ();
      let r2 =
        Registry.compile ~options:(with_cache Cache.Disk o) (entry "phoenix") h
      in
      let s2 = r2.Compiler.cache_stats in
      Alcotest.(check string) (kind ^ " healed = cold")
        (digest cold.Compiler.circuit)
        (digest r2.Compiler.circuit);
      Alcotest.(check int) (kind ^ " healed: no errors") 0 s2.Cache.disk_errors;
      Alcotest.(check bool) (kind ^ " healed: disk hits") true
        (s2.Cache.disk_hits > 0);
      Alcotest.(check bool)
        (kind ^ " healed: no warnings")
        true
        (cache_warnings r2 = []))
    [
      "truncated", corrupt_truncate;
      "bit-flipped", corrupt_bitflip;
      "version-mismatched", corrupt_version;
    ]

(* --- LRU byte budget -------------------------------------------------- *)

let test_lru_budget () =
  Cache.clear_memory ();
  Cache.reset_stats ();
  let old_budget = Cache.budget () in
  let budget = 4096 in
  Cache.set_budget budget;
  let rand = Random.State.make [| 20250806 |] in
  let n = 6 in
  let first_key = ref None in
  for i = 0 to 63 do
    let terms =
      QCheck2.Gen.generate1 ~rand (Helpers.terms_gen n 3)
      (* angle offset makes every group content-distinct even when the
         generator repeats a string *)
      |> List.map (fun (p, a) -> (p, a +. (0.001 *. float_of_int i)))
    in
    let key = Cache.key_of_terms ~exact:false n terms in
    if !first_key = None then first_key := Some key;
    Cache.store ~tier:Cache.Mem key
      (Synthesis.group_circuit (Group.of_terms n terms));
    Alcotest.(check bool)
      (Printf.sprintf "bytes within budget after store %d" i)
      true
      ((Cache.stats ()).Cache.bytes <= budget)
  done;
  let s = Cache.stats () in
  Alcotest.(check bool) "evictions happened" true (s.Cache.evictions > 0);
  Alcotest.(check bool) "entries below insertions" true
    (s.Cache.entries < s.Cache.insertions);
  (match !first_key with
  | Some key ->
    Alcotest.(check bool) "oldest entry evicted" true
      (Cache.lookup ~tier:Cache.Mem ~n key = None)
  | None -> Alcotest.fail "no key stored");
  Cache.set_budget old_budget;
  Cache.clear_memory ()

(* --- stats bookkeeping ------------------------------------------------ *)

let test_stats_diff () =
  let a =
    {
      Cache.hits = 10;
      misses = 4;
      disk_hits = 2;
      disk_errors = 1;
      evictions = 3;
      insertions = 6;
      entries = 5;
      bytes = 777;
    }
  in
  let b =
    {
      Cache.hits = 14;
      misses = 6;
      disk_hits = 2;
      disk_errors = 1;
      evictions = 4;
      insertions = 8;
      entries = 9;
      bytes = 1234;
    }
  in
  let d = Cache.diff b a in
  Alcotest.(check int) "hits" 4 d.Cache.hits;
  Alcotest.(check int) "misses" 2 d.Cache.misses;
  Alcotest.(check int) "evictions" 1 d.Cache.evictions;
  Alcotest.(check int) "insertions" 2 d.Cache.insertions;
  (* gauges come from the later snapshot *)
  Alcotest.(check int) "entries" 9 d.Cache.entries;
  Alcotest.(check int) "bytes" 1234 d.Cache.bytes;
  Alcotest.(check bool) "json has all counters" true
    (List.for_all
       (fun k ->
         let json = Cache.stats_to_json d in
         let rec contains i =
           i + String.length k <= String.length json
           && (String.sub json i (String.length k) = k || contains (i + 1))
         in
         contains 0)
       [ "hits"; "misses"; "disk_hits"; "disk_errors"; "evictions"; "insertions"; "entries"; "bytes" ])

let () =
  Alcotest.run "cache"
    [
      ( "differential",
        [
          Alcotest.test_case "warm = cold on presets (golden)" `Slow
            test_warm_equals_cold_presets;
          Alcotest.test_case "all pipelines disk-identical" `Slow
            test_all_pipelines_disk_identical;
          prop_warm_equals_cold_random;
        ] );
      ( "addressing",
        [
          prop_digest_reorder_invariant;
          prop_digest_sign_flip_distinct;
          prop_relabel_equivariance;
        ] );
      ( "faults",
        [
          Alcotest.test_case "disk fault injection" `Slow
            test_disk_fault_injection;
          Alcotest.test_case "lru byte budget" `Quick test_lru_budget;
        ] );
      ("stats", [ Alcotest.test_case "diff and json" `Quick test_stats_diff ]);
    ]
