module Qasm = Phoenix_circuit.Qasm
module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Unitary = Helpers.Unitary

let h q = Gate.G1 (Gate.H, q)
let cnot a b = Gate.Cnot (a, b)

let test_export_header () =
  let text = Qasm.to_string (Circuit.create 2 [ h 0; cnot 0 1 ]) in
  Alcotest.(check bool) "openqasm" true
    (String.length text > 12 && String.sub text 0 12 = "OPENQASM 2.0");
  Alcotest.(check bool) "qreg" true
    (List.exists
       (fun l -> String.trim l = "qreg q[2];")
       (String.split_on_char '\n' text));
  Alcotest.(check bool) "h gate" true
    (List.exists (fun l -> String.trim l = "h q[0];") (String.split_on_char '\n' text))

let test_export_lowers_abstract_gates () =
  let c =
    Circuit.create 2
      [
        Gate.Cliff2 (Phoenix_pauli.Clifford2q.make Phoenix_pauli.Clifford2q.CXY 0 1);
        Gate.Rpp { p0 = Helpers.Pauli.Z; p1 = Helpers.Pauli.Z; a = 0; b = 1; theta = 0.5 };
      ]
  in
  let text = Qasm.to_string c in
  (* only basis gate names appear *)
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" then
        Alcotest.(check bool)
          ("line ok: " ^ line)
          true
          (List.exists
             (fun prefix ->
               String.length line >= String.length prefix
               && String.sub line 0 (String.length prefix) = prefix)
             [ "OPENQASM"; "include"; "qreg"; "h "; "s "; "sdg "; "t "; "tdg ";
               "x "; "y "; "z "; "rx("; "ry("; "rz("; "cx " ]))
    (String.split_on_char '\n' text)

let roundtrip c =
  let c' = Qasm.of_string (Qasm.to_string c) in
  Helpers.unitary_equiv ~tol:1e-9
    (Unitary.circuit_unitary c)
    (Unitary.circuit_unitary c')

let test_roundtrip_simple () =
  Alcotest.(check bool) "bell" true
    (roundtrip (Circuit.create 2 [ h 0; cnot 0 1 ]));
  Alcotest.(check bool) "rotations" true
    (roundtrip
       (Circuit.create 2
          [ Gate.G1 (Gate.Rz 0.37, 0); Gate.G1 (Gate.Rx (-1.2), 1); cnot 1 0 ]))

let random_gate_gen n =
  let open QCheck2.Gen in
  let pairs =
    map
      (fun (a, d) ->
        let b = (a + 1 + d) mod n in
        a, b)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 2)))
  in
  oneof
    [
      map (fun q -> h q) (int_range 0 (n - 1));
      map (fun q -> Gate.G1 (Gate.S, q)) (int_range 0 (n - 1));
      map (fun q -> Gate.G1 (Gate.Tdg, q)) (int_range 0 (n - 1));
      map (fun (q, t) -> Gate.G1 (Gate.Ry t, q))
        (pair (int_range 0 (n - 1)) Helpers.angle_gen);
      map (fun (a, b) -> cnot a b) pairs;
      map (fun (a, b) -> Gate.Swap (a, b)) pairs;
      map
        (fun ((a, b), k) -> Gate.Cliff2 (Phoenix_pauli.Clifford2q.make k a b))
        (pair pairs (oneofl Phoenix_pauli.Clifford2q.all_kinds));
    ]

let prop_roundtrip =
  Helpers.qtest ~count:80 "qasm roundtrip preserves the unitary"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 12) (random_gate_gen 3))
    (fun gates -> roundtrip (Circuit.create 3 gates))

(* Export is canonical: importing what we printed and printing again
   must reproduce the text byte for byte, and the imported circuit must
   lint clean in the CNOT basis (export lowers everything). *)
let roundtrip_fixed_point c =
  let text = Qasm.to_string c in
  let c' = Qasm.of_string text in
  let lint_ok =
    not
      (Phoenix_analysis.Finding.has_errors
         (Phoenix_analysis.Registry.run
            (Phoenix_analysis.Circuit_lint.target
               ~isa:Phoenix_analysis.Circuit_lint.Cnot_basis c')))
  in
  String.equal text (Qasm.to_string c') && lint_ok

let prop_roundtrip_fixed_point =
  Helpers.qtest ~count:80 "qasm export→import→export is a fixed point"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 12) (random_gate_gen 3))
    (fun gates -> roundtrip_fixed_point (Circuit.create 3 gates))

let test_compiled_roundtrip_fixed_point () =
  let r = Phoenix.Compiler.compile (Phoenix_ham.Spin_models.heisenberg_chain 5) in
  Alcotest.(check bool) "compiled circuit" true
    (roundtrip_fixed_point r.Phoenix.Compiler.circuit)

let test_parse_pi_forms () =
  let c =
    Qasm.of_string
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nrz(pi/2) q[0];\nrx(-pi) q[0];\nry(2*pi) q[0];\n"
  in
  match Circuit.gates c with
  | [ Gate.G1 (Gate.Rz a, 0); Gate.G1 (Gate.Rx b, 0); Gate.G1 (Gate.Ry c', 0) ]
    ->
    let pi = 4.0 *. Float.atan 1.0 in
    Alcotest.(check (float 1e-12)) "pi/2" (pi /. 2.0) a;
    Alcotest.(check (float 1e-12)) "-pi" (-.pi) b;
    Alcotest.(check (float 1e-12)) "2*pi" (2.0 *. pi) c'
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_comments_and_barrier () =
  let c =
    Qasm.of_string
      "OPENQASM 2.0;\nqreg q[2]; // two qubits\n// a comment line\nbarrier q;\nh q[0];\ncx q[0],q[1];\n"
  in
  Alcotest.(check int) "two gates" 2 (Circuit.length c)

let test_parse_errors () =
  Alcotest.check_raises "no qreg" (Invalid_argument "Qasm.of_string: no qreg declaration")
    (fun () -> ignore (Qasm.of_string "OPENQASM 2.0;\nh q[0];\n"));
  (try
     ignore (Qasm.of_string "qreg q[2];\nccx q[0],q[1],q[0];\n");
     Alcotest.fail "should reject"
   with Invalid_argument msg ->
     Alcotest.(check bool) "mentions gate" true
       (String.length msg > 0))

let () =
  Alcotest.run "qasm"
    [
      ( "export",
        [
          Alcotest.test_case "header" `Quick test_export_header;
          Alcotest.test_case "lowers abstract" `Quick
            test_export_lowers_abstract_gates;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "simple" `Quick test_roundtrip_simple;
          prop_roundtrip;
          prop_roundtrip_fixed_point;
          Alcotest.test_case "compiled circuit fixed point" `Quick
            test_compiled_roundtrip_fixed_point;
        ] );
      ( "parse",
        [
          Alcotest.test_case "pi forms" `Quick test_parse_pi_forms;
          Alcotest.test_case "comments/barrier" `Quick
            test_parse_comments_and_barrier;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
    ]
