(* Symbolic translation validation: the proof-carrying certificate
   checker over the Pauli IR.

   Headline properties under test: (1) every pass boundary of every
   registered pipeline — logical, SU(4), routed, exact, template —
   certifies [Proved] under the independent checker; (2) the abstract
   domain's primitives (quarter-turn splitting, Clifford-rotation frame
   folding, frame composition) agree with the gate-level frame they
   canonicalize against; (3) peephole + phase folding preserve the phase
   polynomial on random programs, with the certifier as oracle; and
   (4) corrupting any single certificate field — the layout, the
   physical width, the claim itself — or any single program term is
   rejected: no mutation survives the checker. *)

module Pauli = Helpers.Pauli
module Pauli_string = Helpers.Pauli_string
module Gate = Helpers.Gate
module Circuit = Helpers.Circuit
module Angle = Phoenix_pauli.Angle
module Frame = Phoenix_verify.Frame
module Domain = Phoenix_tv.Domain
module Checker = Phoenix_tv.Checker
module Certify = Phoenix_tv.Certify
module Pass = Phoenix.Pass
module Compiler = Phoenix.Compiler
module Registry = Phoenix_pipeline.Registry
module Workloads = Phoenix_experiments.Workloads
module Spin = Phoenix_ham.Spin_models
module Hamiltonian = Phoenix_ham.Hamiltonian
module Peephole = Phoenix_circuit.Peephole
module Phase_folding = Phoenix_circuit.Phase_folding
module Cache = Phoenix_cache.Cache
module Diag = Phoenix_verify.Diag

let pi = 4.0 *. atan 1.0
let half_pi = pi /. 2.0

(* Tests never touch the user's synthesis cache. *)
let base_options = { Compiler.default_options with Compiler.cache = Cache.Off }

let proved = function Checker.Proved -> true | _ -> false
let refuted = function Checker.Refuted _ -> true | _ -> false

let check_verdict what want got =
  Alcotest.(check string)
    what
    (Checker.verdict_label want)
    (Checker.verdict_label got)

(* --- quarter-turn splitting ---------------------------------------------- *)

let test_split_quarter_turns () =
  List.iter
    (fun c ->
      let k, r = Domain.split_quarter_turns (Angle.linearize c) in
      Alcotest.(check bool)
        (Printf.sprintf "k in 0..3 for %g" c)
        true
        (k >= 0 && k <= 3);
      Alcotest.(check bool)
        (Printf.sprintf "remainder in [-pi/4, pi/4] for %g" c)
        true
        (Float.abs r.Angle.const <= (pi /. 4.0) +. 1e-12);
      (* Reconstruction modulo 2π: k·π/2 + r ≡ c. *)
      let back =
        Float.rem ((float k *. half_pi) +. r.Angle.const -. c) (2.0 *. pi)
      in
      let back = Float.abs back in
      let back = Float.min back (Float.abs (back -. (2.0 *. pi))) in
      Alcotest.(check bool)
        (Printf.sprintf "k·π/2 + r ≡ %g (mod 2π)" c)
        true (back < 1e-9))
    [
      0.0; 0.3; -0.3; half_pi; -.half_pi; pi; -.pi; 1.5 *. pi; 2.0 *. pi;
      half_pi +. 0.3; pi -. 0.1; -3.0 *. half_pi; 7.0 *. half_pi; 2.0;
    ];
  (* Slot coefficients pass through untouched. *)
  let sym =
    Angle.linear_add
      (Angle.linearize (Angle.param ~index:3 ~scale:0.5))
      (Angle.linearize (half_pi +. 0.25))
  in
  let k, r = Domain.split_quarter_turns sym in
  Alcotest.(check int) "symbolic: one quarter turn" 1 k;
  Alcotest.(check bool)
    "symbolic: coefficients untouched" true
    (r.Angle.coeffs = sym.Angle.coeffs);
  Alcotest.(check (float 1e-12)) "symbolic: const remainder" 0.25 r.Angle.const;
  (* Guard: non-finite consts are left alone. *)
  let inf = { Angle.coeffs = []; Angle.const = Float.infinity } in
  let k, r = Domain.split_quarter_turns inf in
  Alcotest.(check int) "infinite const: no split" 0 k;
  Alcotest.(check bool)
    "infinite const: unchanged" true
    (r.Angle.const = Float.infinity)

(* --- frame primitives ----------------------------------------------------- *)

(* A Clifford prefix so the equalities are checked on a non-trivial
   frame, not just the identity. *)
let clifford_prefix n =
  [
    Gate.G1 (Gate.H, 0);
    Gate.Cnot (0, 1);
    Gate.G1 (Gate.S, 1);
    Gate.Swap (0, n - 1);
    Gate.G1 (Gate.Sdg, n - 1);
    Gate.Cnot (n - 1, 0);
  ]

let frame_of n gates =
  let f = Frame.identity n in
  List.iter (Frame.apply_gate f) gates;
  f

let test_apply_pauli_rotation () =
  let n = 3 in
  List.iter
    (fun (what, gate, axis_p, k) ->
      for q = 0 to n - 1 do
        let by_gate = frame_of n (clifford_prefix n) in
        Frame.apply_gate by_gate (Gate.G1 (gate, q));
        let by_rot = frame_of n (clifford_prefix n) in
        Frame.apply_pauli_rotation by_rot (Pauli_string.single n q axis_p) k;
        Alcotest.(check bool)
          (Printf.sprintf "%s on qubit %d == %d quarter turns" what q k)
          true
          (Domain.frame_equal by_gate by_rot)
      done)
    [
      ("S", Gate.S, Pauli.Z, 1);
      ("Z", Gate.Z, Pauli.Z, 2);
      ("Sdg", Gate.Sdg, Pauli.Z, 3);
      ("X", Gate.X, Pauli.X, 2);
      ("Y", Gate.Y, Pauli.Y, 2);
    ];
  (* k = 0 and k = 4 are no-ops; a two-qubit axis round-trips. *)
  let f = frame_of n (clifford_prefix n) in
  let g = Frame.copy f in
  Frame.apply_pauli_rotation g (Pauli_string.single n 0 Pauli.Z) 0;
  Frame.apply_pauli_rotation g (Pauli_string.single n 1 Pauli.X) 4;
  Alcotest.(check bool) "k = 0 and k = 4 are no-ops" true
    (Domain.frame_equal f g);
  let zz = Pauli_string.set (Pauli_string.single n 0 Pauli.Z) 1 Pauli.Z in
  Frame.apply_pauli_rotation g zz 1;
  Frame.apply_pauli_rotation g zz 3;
  Alcotest.(check bool) "two-qubit quarter turn inverts" true
    (Domain.frame_equal f g)

let test_compose () =
  let n = 3 in
  let gates = clifford_prefix n @ [ Gate.G1 (Gate.Z, 1); Gate.Cnot (1, 2) ] in
  let whole = frame_of n gates in
  for cut = 0 to List.length gates do
    let first = List.filteri (fun i _ -> i < cut) gates in
    let second = List.filteri (fun i _ -> i >= cut) gates in
    Alcotest.(check bool)
      (Printf.sprintf "compose at cut %d == whole scan" cut)
      true
      (Domain.frame_equal
         (Frame.compose (frame_of n first) (frame_of n second))
         whole)
  done

(* A Clifford phase abstracts identically whether spelled as a gate or
   as a rotation: after canonicalization both sides are pure frame. *)
let test_canonicalize_spellings () =
  let n = 2 in
  let as_gate = Circuit.create n [ Gate.G1 (Gate.S, 0); Gate.Cnot (0, 1) ] in
  let as_rot =
    Circuit.create n [ Gate.G1 (Gate.Rz half_pi, 0); Gate.Cnot (0, 1) ]
  in
  let a = Checker.canonicalize (Domain.of_circuit as_gate) in
  let b = Checker.canonicalize (Domain.of_circuit as_rot) in
  Alcotest.(check int) "gate spelling: no residual terms" 0
    (List.length a.Domain.terms);
  Alcotest.(check int) "rotation spelling: no residual terms" 0
    (List.length b.Domain.terms);
  Alcotest.(check bool) "frames agree" true
    (Domain.frame_equal a.Domain.frame b.Domain.frame)

(* --- sequence vs multiset relations -------------------------------------- *)

let term n q p theta =
  { Domain.axis = Pauli_string.single n q p; Domain.angle = Angle.linearize theta }

let test_relations () =
  let n = 1 in
  let a = [ term n 0 Pauli.Z 0.3; term n 0 Pauli.X 0.5 ] in
  let swapped = [ term n 0 Pauli.X 0.5; term n 0 Pauli.Z 0.3 ] in
  check_verdict "multiset accepts anticommuting reorder" Checker.Proved
    (Checker.compare_multiset a swapped);
  Alcotest.(check bool) "sequence rejects anticommuting reorder" true
    (refuted (Checker.compare_sequence a swapped));
  let n = 2 in
  let c = [ term n 0 Pauli.Z 0.3; term n 1 Pauli.X 0.5 ] in
  let c_swapped = [ term n 1 Pauli.X 0.5; term n 0 Pauli.Z 0.3 ] in
  check_verdict "sequence accepts commuting reorder" Checker.Proved
    (Checker.compare_sequence c c_swapped);
  let merged = [ term n 0 Pauli.Z 0.8 ] in
  let split = [ term n 0 Pauli.Z 0.3; term n 0 Pauli.Z 0.5 ] in
  check_verdict "sequence merges same-axis neighbours" Checker.Proved
    (Checker.compare_sequence merged split)

(* --- every pipeline certifies ---------------------------------------------- *)

let lih = lazy (List.hd (Workloads.uccsd_suite ~labels:[ "LiH_frz_JW" ] ()))

let certified_blocks ~what entry options n blocks =
  let acc = ref [] in
  ignore
    (Registry.compile_blocks ~options ~hooks:[ Certify.hook acc ] entry n
       blocks);
  let bs = Certify.boundaries acc in
  Alcotest.(check bool) (what ^ ": boundaries recorded") true (bs <> []);
  List.iter
    (fun (b : Certify.boundary) ->
      match b.Certify.verdict with
      | Checker.Proved -> ()
      | v ->
        Alcotest.failf "%s: pass %s (%s claim) %s%s" what b.Certify.pass
          b.Certify.claim
          (Checker.verdict_label v)
          (match Checker.verdict_reason v with
          | Some r -> ": " ^ r
          | None -> ""))
    bs

let test_all_pipelines_certify () =
  let case = Lazy.force lih in
  let heavy_hex = Workloads.heavy_hex () in
  let heis = Spin.heisenberg_chain 6 in
  let heis_blocks =
    List.map (fun g -> [ g ]) (Hamiltonian.trotter_gadgets heis)
  in
  List.iter
    (fun (entry : Registry.entry) ->
      let n, blocks =
        if entry.Registry.two_local_only then (6, heis_blocks)
        else (case.Workloads.n, case.Workloads.gadget_blocks)
      in
      let topology =
        if entry.Registry.two_local_only then Phoenix_topology.Topology.line 6
        else heavy_hex
      in
      if not entry.Registry.requires_topology then
        certified_blocks
          ~what:(entry.Registry.name ^ "/logical")
          entry base_options n blocks;
      certified_blocks
        ~what:(entry.Registry.name ^ "/hardware")
        entry
        { base_options with Compiler.target = Compiler.Hardware topology }
        n blocks)
    Registry.all

let test_phoenix_option_combos () =
  let case = Lazy.force lih in
  let entry =
    match Registry.find "phoenix" with
    | Some e -> e
    | None -> Alcotest.fail "phoenix pipeline not registered"
  in
  let heavy_hex = Workloads.heavy_hex () in
  List.iter
    (fun (what, options) ->
      certified_blocks ~what:("phoenix/" ^ what) entry options
        case.Workloads.n case.Workloads.gadget_blocks)
    [
      ("su4", { base_options with Compiler.isa = Compiler.Su4_isa });
      ("exact", { base_options with Compiler.exact = true });
      ( "su4+hardware",
        {
          base_options with
          Compiler.isa = Compiler.Su4_isa;
          Compiler.target = Compiler.Hardware heavy_hex;
        } );
    ]

(* --- template certification ------------------------------------------------ *)

let symbolic_blocks base_blocks =
  List.mapi
    (fun k block ->
      List.map (fun (p, base) -> (p, Angle.param ~index:k ~scale:base)) block)
    base_blocks

let param_names base_blocks =
  Array.init (List.length base_blocks) (Printf.sprintf "theta%d")

let test_template_certifies () =
  let case = Lazy.force lih in
  let base = case.Workloads.gadget_blocks in
  let acc = ref [] in
  let tmpl =
    Compiler.compile_template ~options:base_options
      ~hooks:[ Certify.hook acc ] ~certified:true ~params:(param_names base)
      case.Workloads.n (symbolic_blocks base)
  in
  let bs = Certify.boundaries acc in
  Alcotest.(check bool) "all template boundaries proved" true
    (Certify.all_proved bs && bs <> []);
  Alcotest.(check bool) "parametrize boundary present" true
    (List.exists (fun (b : Certify.boundary) -> b.Certify.pass = "parametrize") bs);
  let diags = (Phoenix.Template.report tmpl).Compiler.diagnostics in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let mentions pat =
    List.exists
      (fun (d : Diag.t) ->
        d.Diag.pass = "parametrize" && contains d.Diag.message pat)
      diags
  in
  Alcotest.(check bool) "symbolic-certification diagnostic present" true
    (mentions "symbolic certification");
  Alcotest.(check bool) "deferral diagnostic absent" true
    (not (mentions "verification deferred"))

(* --- qcheck: rewrites audited by the certifier ----------------------------- *)

(* Random gadget programs, synthesized gadget-by-gadget in program order
   (the naive pipeline — no Trotter reordering), then pushed through an
   extra peephole + phase-folding round; the certifier must still prove
   the circuit implements the program.  Phase folding respells S/Z
   phases as Rz rotations and fuses them into neighbouring cells, so
   this exercises the canonicalization path, not just the raw one. *)
let qcheck_rewrites_preserve_polynomial =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60
       ~name:
         "peephole + phase folding preserve the phase polynomial (certifier \
          oracle)"
       ~print:(fun program ->
         String.concat "; "
           (List.map
              (fun (p, theta) ->
                Printf.sprintf "(%s, %.17g)" (Pauli_string.to_string p) theta)
              program))
       (Helpers.terms_gen 4 8)
       (fun program ->
         let entry =
           match Registry.find "naive" with
           | Some e -> e
           | None -> Alcotest.fail "naive pipeline not registered"
         in
         let report =
           Registry.compile_gadgets ~options:base_options entry 4 program
         in
         let rewritten =
           Phase_folding.fold (Peephole.optimize report.Compiler.circuit)
         in
         proved (Checker.check_program 4 program rewritten)))

(* --- fault injection: corrupted certificates are rejected ------------------ *)

(* Capture live boundaries (claim + both contexts) out of a real
   hardware compile, then corrupt one field at a time. *)
let captured =
  lazy
    (let case = Lazy.force lih in
     let routing = ref None and lower = ref None in
     let hook ~pass ~before ~after ~seconds:_ =
       let claim = pass.Pass.certify ~before ~after in
       match (claim, !routing) with
       | Pass.Routing { l2p; n_physical }, None ->
         routing := Some (l2p, n_physical, before, after)
       | _ ->
         if pass.Pass.name = "lower" && !lower = None then
           lower := Some (claim, before, after)
     in
     let options =
       {
         base_options with
         Compiler.target = Compiler.Hardware (Workloads.heavy_hex ());
       }
     in
     ignore
       (Compiler.compile_blocks ~options ~hooks:[ hook ] case.Workloads.n
          case.Workloads.gadget_blocks);
     match !routing with
     | Some r -> r
     | None -> Alcotest.fail "hardware compile exposed no routing boundary")

(* The lower boundary of a LOGICAL compile: there the pass genuinely
   rewrites (CNOT lowering + phase folding), so overclaiming [Unchanged]
   on it must be caught.  (On a hardware compile lowering already
   happened inside routing, and the boundary really is unchanged.) *)
let captured_lower =
  lazy
    (let case = Lazy.force lih in
     let lower = ref None in
     let hook ~pass ~before ~after ~seconds:_ =
       if pass.Pass.name = "lower" && !lower = None then
         lower := Some (pass.Pass.certify ~before ~after, before, after)
     in
     ignore
       (Compiler.compile_blocks ~options:base_options ~hooks:[ hook ]
          case.Workloads.n case.Workloads.gadget_blocks);
     match !lower with
     | Some l -> l
     | None -> Alcotest.fail "logical compile exposed no lower boundary")

let test_routing_mutations_rejected () =
  let l2p, n_physical, before, after = Lazy.force captured in
  let claim l2p n_physical = Pass.Routing { l2p; n_physical } in
  check_verdict "sanity: unmutated certificate proves" Checker.Proved
    (Checker.check_boundary ~claim:(claim l2p n_physical) ~before ~after);
  let mutations =
    [
      ( "swapped layout entries",
        (let m = Array.copy l2p in
         let t = m.(0) in
         m.(0) <- m.(1);
         m.(1) <- t;
         claim m n_physical) );
      ( "layout entry off the register",
        (let m = Array.copy l2p in
         m.(0) <- n_physical;
         claim m n_physical) );
      ( "non-injective layout",
        (let m = Array.copy l2p in
         m.(0) <- m.(1);
         claim m n_physical) );
      ("wrong physical width", claim l2p (n_physical + 1));
      ("claim downgraded to unchanged", Pass.Unchanged);
      ("claim downgraded to preserving", Pass.Preserving);
      ("claim downgraded to reordering", Pass.Reordering);
    ]
  in
  List.iter
    (fun (what, claim) ->
      Alcotest.(check bool)
        (what ^ " is rejected")
        true
        (refuted (Checker.check_boundary ~claim ~before ~after)))
    mutations

let test_unchanged_claim_on_changed_boundary () =
  let claim, before, after = Lazy.force captured_lower in
  check_verdict "sanity: lower boundary proves under its own claim"
    Checker.Proved
    (Checker.check_boundary ~claim ~before ~after);
  Alcotest.(check bool)
    "overclaiming unchanged on a rewriting pass is rejected" true
    (refuted
       (Checker.check_boundary ~claim:Pass.Unchanged ~before ~after))

let test_program_mutations_rejected () =
  let ham = Spin.tfim_chain 4 in
  let program = Hamiltonian.trotter_gadgets ham in
  let report = Compiler.compile_gadgets ~options:base_options 4 program in
  let circuit = report.Compiler.circuit in
  check_verdict "sanity: unmutated program proves" Checker.Proved
    (Checker.check_program 4 program circuit);
  let flip_axis (p, theta) =
    let q0 =
      match Pauli_string.get p 0 with Pauli.X -> Pauli.Y | _ -> Pauli.X
    in
    (Pauli_string.set p 0 q0, theta)
  in
  let mutate = function
    | [] -> Alcotest.fail "empty program"
    | g :: rest ->
      [
        ("dropped rotation", rest);
        ("extra rotation", g :: g :: rest);
        ( "perturbed angle",
          (fst g, snd g +. 0.3) :: rest (* 0.3: not a quarter turn *) );
        ("flipped axis", flip_axis g :: rest);
      ]
  in
  List.iter
    (fun (what, mutated) ->
      Alcotest.(check bool)
        (what ^ " is rejected")
        true
        (refuted (Checker.check_program 4 mutated circuit)))
    (mutate program)

let () =
  Alcotest.run "tv"
    [
      ( "domain",
        [
          Alcotest.test_case "split_quarter_turns" `Quick
            test_split_quarter_turns;
          Alcotest.test_case "apply_pauli_rotation == gate frames" `Quick
            test_apply_pauli_rotation;
          Alcotest.test_case "compose == concatenated scan" `Quick
            test_compose;
          Alcotest.test_case "canonicalize reconciles spellings" `Quick
            test_canonicalize_spellings;
          Alcotest.test_case "sequence vs multiset relations" `Quick
            test_relations;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "every registered pipeline certifies" `Slow
            test_all_pipelines_certify;
          Alcotest.test_case "phoenix option combos certify" `Slow
            test_phoenix_option_combos;
          Alcotest.test_case "template certifies for all bindings" `Quick
            test_template_certifies;
        ] );
      ( "property",
        [ qcheck_rewrites_preserve_polynomial ] );
      ( "fault-injection",
        [
          Alcotest.test_case "routing certificate mutations rejected" `Quick
            test_routing_mutations_rejected;
          Alcotest.test_case "unchanged overclaim rejected" `Quick
            test_unchanged_claim_on_changed_boundary;
          Alcotest.test_case "program mutations rejected" `Quick
            test_program_mutations_rejected;
        ] );
    ]
